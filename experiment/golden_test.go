package experiment_test

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"optchain/experiment"

	_ "optchain/internal/bench" // registers the named paper sweeps
)

// updateGolden regenerates the committed golden row fixtures:
//
//	go test ./experiment -run TestGoldenRows -update
var updateGolden = flag.Bool("update", false, "regenerate testdata/golden fixtures")

// goldenParams pins every knob that feeds cell identity or simulation
// output, so the fixtures are reproducible on any host. Two workers keep
// the full registry affordable while exercising the parallel path (rows
// are scheduling-independent by contract).
func goldenParams() experiment.Params {
	p := quickParams()
	p.Workers = 2
	return p
}

// goldenPath is the committed fixture for one registered sweep.
func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".jsonl")
}

// TestGoldenRows locks the quality metrics of every registered sweep: each
// sweep runs at the pinned golden parameters and its rows must reproduce
// the committed fixture exactly — a zero-tolerance diff through the same
// comparator the CI quality gate uses, so any placement-quality drift
// anywhere in the stack (placer, simulator, workload generators, cell
// identity) fails loudly with the offending cell named.
func TestGoldenRows(t *testing.T) {
	names := experiment.SweepNames()
	if len(names) == 0 {
		t.Fatal("no registered sweeps")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, err := experiment.BuildSweep(name, goldenParams())
			if err != nil {
				t.Fatal(err)
			}
			r := experiment.NewRunner(goldenParams())
			rows, err := r.Collect(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			// Host timing is noise, not quality; fixtures store flat data.
			for i := range rows {
				rows[i].WallSeconds = 0
			}
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(goldenPath(name)), 0o755); err != nil {
					t.Fatal(err)
				}
				writeRowsFile(t, goldenPath(name), rows)
				t.Logf("wrote %s (%d rows)", goldenPath(name), len(rows))
				return
			}
			want, err := experiment.DecodeRowsFile(goldenPath(name))
			if err != nil {
				t.Fatalf("%v (regenerate with: go test ./experiment -run TestGoldenRows -update)", err)
			}
			rep, err := experiment.Diff(want, rows, experiment.Tolerances{})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Missing) > 0 || len(rep.New) > 0 {
				t.Fatalf("cell set changed: %d missing, %d new (first: %s) — update the fixture if intended",
					len(rep.Missing), len(rep.New), firstOf(rep.Missing, rep.New))
			}
			if err := rep.Err(); err != nil {
				var table []byte
				buf := &bytesWriter{}
				if rerr := rep.Render(buf); rerr == nil {
					table = buf.b
				}
				t.Fatalf("%v\n%s", err, table)
			}
		})
	}
}

func firstOf(lists ...[]string) string {
	for _, l := range lists {
		if len(l) > 0 {
			return l[0]
		}
	}
	return ""
}

// bytesWriter is a minimal io.Writer over a byte slice (avoids importing
// bytes just for the failure path).
type bytesWriter struct{ b []byte }

func (w *bytesWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// TestGoldenFixturesCommitted: every registered sweep has a committed
// fixture and every committed fixture matches a registered sweep — the
// golden directory cannot rot as sweeps come and go.
func TestGoldenFixturesCommitted(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	registered := map[string]bool{}
	for _, name := range experiment.SweepNames() {
		registered[name] = true
		if _, err := os.Stat(goldenPath(name)); err != nil {
			t.Errorf("sweep %q has no golden fixture: %v", name, err)
		}
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if ext := filepath.Ext(name); ext != ".jsonl" {
			t.Errorf("unexpected file in testdata/golden: %s", name)
			continue
		}
		sweep := name[:len(name)-len(".jsonl")]
		if !registered[sweep] {
			t.Errorf("stale fixture %s: no registered sweep %q", name, sweep)
		}
	}
}
