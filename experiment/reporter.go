package experiment

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"
	"sync"
)

// Reporter is a sweep result sink. The Runner drives it through Report:
// Begin once, Row per result in canonical order as cells complete, End
// once — including after a failure or cancellation, so partial output is
// flushed rather than lost.
//
// Implementations need not be safe for concurrent use; the Runner
// serializes calls.
type Reporter interface {
	// Begin observes the sweep definition before any row.
	Begin(s Sweep, p Params) error
	// Row observes one completed result row.
	Row(r Row) error
	// End flushes. It is called exactly once, even on failure paths.
	End() error
}

// ReporterFactory builds a reporter writing to w. opts carries the
// reporter's knobs (from a "name:key=value,..." spec); factories MUST
// reject unknown keys with an error wrapping ErrBadReporterOption, so
// misspelled knobs fail instead of being silently inert.
type ReporterFactory func(w io.Writer, opts map[string]string) (Reporter, error)

var (
	repMu      sync.RWMutex
	repEntries = make(map[string]repEntry) // keyed by lower-cased name
)

type repEntry struct {
	display string
	factory ReporterFactory
}

// RegisterReporter adds a reporter to the open registry under the given
// case-insensitive name, making it selectable everywhere a reporter name
// is accepted (NewReporter, cmd/optchain-bench -reporter). Registering a
// duplicate or empty name, or a nil factory, returns an error — the same
// rules as optchain.RegisterStrategy.
func RegisterReporter(name string, f ReporterFactory) error {
	name = strings.TrimSpace(name)
	if name == "" {
		return fmt.Errorf("%w: empty reporter name", ErrBadRegistration)
	}
	if f == nil {
		return fmt.Errorf("%w: nil reporter factory for %q", ErrBadRegistration, name)
	}
	key := strings.ToLower(name)
	repMu.Lock()
	defer repMu.Unlock()
	if prev, ok := repEntries[key]; ok {
		return fmt.Errorf("%w: reporter %q already registered", ErrBadRegistration, prev.display)
	}
	repEntries[key] = repEntry{display: name, factory: f}
	return nil
}

// mustRegisterReporter registers a built-in; failure is a programming error.
func mustRegisterReporter(name string, f ReporterFactory) {
	if err := RegisterReporter(name, f); err != nil {
		panic(err)
	}
}

// Reporters enumerates the registered reporter names, sorted.
func Reporters() []string {
	repMu.RLock()
	defer repMu.RUnlock()
	out := make([]string, 0, len(repEntries))
	for _, e := range repEntries {
		out = append(out, e.display)
	}
	sort.Strings(out)
	return out
}

// HasReporter reports whether name resolves to a registered reporter.
func HasReporter(name string) bool {
	repMu.RLock()
	defer repMu.RUnlock()
	_, ok := repEntries[strings.ToLower(strings.TrimSpace(name))]
	return ok
}

// ParseReporterSpec splits a reporter spec "name[:key=value,...]" into the
// registry name and its option map. The name is validated against the
// registry; option keys are validated later, by the named factory.
func ParseReporterSpec(spec string) (string, map[string]string, error) {
	s := strings.TrimSpace(spec)
	name, rest, found := strings.Cut(s, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, fmt.Errorf("%w: empty reporter spec", ErrUnknownReporter)
	}
	if !HasReporter(name) {
		return "", nil, fmt.Errorf("%w %q (registered: %s)",
			ErrUnknownReporter, name, strings.Join(Reporters(), ", "))
	}
	var opts map[string]string
	if found && strings.TrimSpace(rest) != "" {
		opts = make(map[string]string)
		for _, tok := range strings.Split(rest, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			k, v, ok := strings.Cut(tok, "=")
			if !ok || strings.TrimSpace(k) == "" {
				return "", nil, fmt.Errorf("%w: reporter %q option %q is not key=value",
					ErrBadReporterOption, name, tok)
			}
			opts[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	return name, opts, nil
}

// NewReporter builds a registered reporter from a spec ("jsonl",
// "csv:header=off") writing to w. Unknown names list the registry; unknown
// option keys fail with ErrBadReporterOption.
func NewReporter(spec string, w io.Writer) (Reporter, error) {
	name, opts, err := ParseReporterSpec(spec)
	if err != nil {
		return nil, err
	}
	repMu.RLock()
	e := repEntries[strings.ToLower(name)]
	repMu.RUnlock()
	return e.factory(w, opts)
}

// checkReporterOpts rejects option keys outside the reporter's allowed set.
// Unknown keys are collected and sorted so the error text is identical
// regardless of map iteration order.
func checkReporterOpts(reporter string, opts map[string]string, allowed ...string) error {
	var unknown []string
	for k := range opts {
		if !slices.Contains(allowed, k) {
			unknown = append(unknown, k)
		}
	}
	sort.Strings(unknown)
	if len(unknown) > 0 {
		sort.Strings(allowed)
		have := "it takes none"
		if len(allowed) > 0 {
			have = "it takes: " + strings.Join(allowed, ", ")
		}
		return fmt.Errorf("%w: reporter %q has no option %q (%s)",
			ErrBadReporterOption, reporter, unknown[0], have)
	}
	return nil
}
