package experiment

import (
	"fmt"
	"strconv"
	"strings"

	"optchain/internal/registry"
	"optchain/internal/workload"
)

// Kind selects what a cell measures.
type Kind string

const (
	// KindSim is an end-to-end DES simulation cell (figures 3-11): committees
	// on a simulated network, a live commit protocol, latency and throughput
	// metrics.
	KindSim Kind = "sim"
	// KindPlacement is an offline placement-replay cell (Tables I-II,
	// ablation A2): the whole stream placed into empty shards, counting
	// cross-shard transactions — no network, no protocol.
	KindPlacement Kind = "placement"
)

// Cell is one grid point of a sweep — the unit of execution and caching.
// Its identity (ID) is a pure function of its fields, so row identity is
// deterministic regardless of worker scheduling.
type Cell struct {
	// Kind defaults to KindSim.
	Kind Kind `json:"kind"`
	// Strategy is the placement strategy registry name. Placement cells
	// accept the offline vocabulary: Metis, Greedy, OmniLedger, T2S.
	Strategy string `json:"strategy"`
	// Protocol is the commit backend registry name (sim cells only; empty
	// takes the runner's Params.Protocol).
	Protocol string `json:"protocol,omitempty"`
	// Shards is the shard count.
	Shards int `json:"shards"`
	// Rate is the offered load in tx/s (sim cells only).
	Rate float64 `json:"rate,omitempty"`
	// Workload is the workload spec driving the cell (empty takes the
	// runner's Params.Workload, defaulting to the calibrated generator).
	Workload string `json:"workload,omitempty"`
	// Txs overrides the stream length. Zero means the runner default
	// (Params.N for sim cells, Params.TableN for placement cells) with
	// commit windows scaled to the run length; explicit values run with the
	// simulator's fixed defaults (the Fig. 11 saturation regime).
	Txs int `json:"txs,omitempty"`
	// Warm makes a placement cell replay the Metis partition for the first
	// Warm transactions before handing the stream to Strategy — Table II's
	// warm-start setting. Placement cells only; a sim cell with Warm set is
	// rejected rather than silently ignoring it.
	Warm int `json:"warm,omitempty"`
	// Alpha overrides the PageRank damping factor for T2S-family scoring
	// (0 = the paper's 0.5). Applies to both cell kinds.
	Alpha float64 `json:"alpha,omitempty"`
	// L2SWeight overrides the Temporal Fitness L2S coefficient (0 = the
	// paper's 0.01). Sim cells only; offline placement has no latency
	// term, so a placement cell with L2SWeight set is rejected.
	L2SWeight float64 `json:"l2s_weight,omitempty"`
	// Streamed drives the cell from a streaming workload source instead of
	// a materialized dataset. The Metis strategy cannot stream (it replays
	// an offline partition of the full graph); such cells materialize and
	// report Streamed=false in their row.
	Streamed bool `json:"streamed,omitempty"`
	// Parallelism replays a placement cell through parallel placement
	// epochs with that many workers (see optchain.WithParallelism), so the
	// decision-quality drift of concurrent placement is swept against the
	// serial baseline (Parallelism 0 or 1). Placement cells only, and only
	// for strategies with epoch support — Metis replay and warm starts are
	// inherently serial and are rejected.
	Parallelism int `json:"parallelism,omitempty"`
	// Tag distinguishes otherwise-identical variants in cell IDs.
	Tag string `json:"tag,omitempty"`
	// NoCache forces the cell to execute even when an identical cell is
	// cached — for wall-clock measurements (the baseline sections).
	NoCache bool `json:"-"`
}

// ID returns the cell's stable identity string — a pure function of the
// cell's fields and the runner defaults it resolves against. Two cells with
// equal IDs produce identical rows under the same Params.
func (c Cell) id(p Params) string {
	var b strings.Builder
	kind := c.Kind
	if kind == "" {
		kind = KindSim
	}
	b.WriteString(string(kind))
	b.WriteByte(':')
	b.WriteString(c.Strategy)
	if kind == KindSim {
		proto := c.Protocol
		if proto == "" {
			proto = p.Protocol
		}
		b.WriteByte('/')
		b.WriteString(proto)
	}
	fmt.Fprintf(&b, "/k%d", c.Shards)
	if kind == KindSim {
		fmt.Fprintf(&b, "/r%s", strconv.FormatFloat(c.Rate, 'g', -1, 64))
	}
	wl := c.Workload
	if wl == "" {
		wl = p.WorkloadLabel()
	}
	b.WriteString("/wl=")
	b.WriteString(wl)
	if c.Txs != 0 {
		fmt.Fprintf(&b, "/n%d", c.Txs)
	} else if kind == KindSim {
		// Default-length sim cells scale commit windows with Params.N; an
		// explicit Txs of the same value runs fixed windows, so the two must
		// never share a cache slot.
		fmt.Fprintf(&b, "/n%d/scaledwin", p.N)
	} else {
		fmt.Fprintf(&b, "/n%d", p.TableN)
	}
	if c.Warm > 0 {
		fmt.Fprintf(&b, "/warm%d", c.Warm)
	}
	if c.Alpha != 0 {
		fmt.Fprintf(&b, "/alpha%s", strconv.FormatFloat(c.Alpha, 'g', -1, 64))
	}
	if c.L2SWeight != 0 {
		fmt.Fprintf(&b, "/w%s", strconv.FormatFloat(c.L2SWeight, 'g', -1, 64))
	}
	if c.effectiveStreamed() {
		b.WriteString("/streamed")
	}
	if c.Parallelism > 0 {
		fmt.Fprintf(&b, "/par%d", c.Parallelism)
	}
	if c.Tag != "" {
		b.WriteString("/tag=")
		b.WriteString(c.Tag)
	}
	return b.String()
}

// effectiveStreamed reports whether the cell actually streams: Metis
// replays an offline partition of the materialized graph, so Metis cells
// materialize even inside a streaming sweep.
func (c Cell) effectiveStreamed() bool {
	return c.Streamed && !strings.EqualFold(c.Strategy, "Metis")
}

// Sweep is a declarative experiment grid: either axis lists expanded as a
// cross product in canonical order (workloads, strategies, protocols,
// shards, rates, alphas, weights, parallelisms — outermost first), or an
// explicit Cells list. The zero value of every axis inherits the runner's Params default.
type Sweep struct {
	// Name labels the sweep in reports and row identity.
	Name string `json:"name"`
	// Description is a one-line summary (shown by -list-sweeps).
	Description string `json:"description,omitempty"`

	// Kind applies to every generated cell (default KindSim).
	Kind Kind `json:"kind,omitempty"`
	// Strategies is the strategy axis (default: Params.Strategies, falling
	// back to the paper's four; placement sweeps have no implicit default
	// and must set it).
	Strategies []string `json:"strategies,omitempty"`
	// Protocols is the protocol axis (default: {Params.Protocol}).
	Protocols []string `json:"protocols,omitempty"`
	// Shards is the shard-count axis.
	Shards []int `json:"shards,omitempty"`
	// Rates is the offered-load axis (sim sweeps).
	Rates []float64 `json:"rates,omitempty"`
	// Workloads is the workload-spec axis (default: {Params.Workload}).
	Workloads []string `json:"workloads,omitempty"`
	// Alphas is the damping-factor axis for placement sweeps (0 entries
	// mean the paper default).
	Alphas []float64 `json:"alphas,omitempty"`
	// L2SWeights is the Temporal Fitness coefficient axis for sim sweeps.
	L2SWeights []float64 `json:"l2s_weights,omitempty"`
	// Parallelisms is the epoch worker-count axis for placement sweeps
	// (0 entries mean serial replay), sweeping concurrent decision drift
	// against the serial baseline.
	Parallelisms []int `json:"parallelisms,omitempty"`

	// Txs, Warm, Tag, and Streaming apply to every generated cell (see the
	// Cell fields of the same names). Streaming additionally defaults to
	// Params.Streaming.
	Txs       int    `json:"txs,omitempty"`
	Warm      int    `json:"warm,omitempty"`
	Tag       string `json:"tag,omitempty"`
	Streaming bool   `json:"streaming,omitempty"`

	// Cells, when non-empty, is the explicit cell list. It must not be
	// combined with the axis or cell-default fields above — every knob of
	// an explicit cell lives on the cell, and a sweep-level value that
	// silently did nothing would be a misconfiguration trap, so expand
	// rejects the combination. (Params.Streaming still applies only through
	// per-cell Streamed for explicit cells.)
	Cells []Cell `json:"cells,omitempty"`

	// Uncached forces every cell to execute even when cached — for
	// wall-clock measurements.
	Uncached bool `json:"-"`
	// Serial runs the sweep's cells one at a time regardless of the worker
	// budget, so per-cell wall clocks are not distorted by contention (the
	// baseline sections use it).
	Serial bool `json:"-"`
}

// placementStrategies is the offline placement vocabulary of Tables I-II.
var placementStrategies = map[string]bool{
	"metis": true, "greedy": true, "omniledger": true, "t2s": true,
}

// validCell validates one cell against the open registries.
func validCell(c Cell, p Params) error {
	kind := c.Kind
	if kind == "" {
		kind = KindSim
	}
	switch kind {
	case KindSim:
		if c.Parallelism != 0 {
			// The simulation places one transaction per issue event; batch
			// parallelism has no meaning there (yet), so reject instead of
			// minting a cell ID that claims an inert parameter.
			return fmt.Errorf("%w: Parallelism applies to placement cells, not sim cells", ErrBadSweep)
		}
		if !registry.HasStrategy(c.Strategy) {
			return fmt.Errorf("%w: unknown strategy %q (registered: %s)",
				ErrBadSweep, c.Strategy, strings.Join(registry.Strategies(), ", "))
		}
		proto := c.Protocol
		if proto == "" {
			proto = p.Protocol
		}
		if !registry.HasProtocol(proto) {
			return fmt.Errorf("%w: unknown protocol %q (registered: %s)",
				ErrBadSweep, proto, strings.Join(registry.Protocols(), ", "))
		}
		if c.Rate <= 0 {
			return fmt.Errorf("%w: cell %s: rate must be positive", ErrBadSweep, c.Strategy)
		}
		if c.Warm > 0 {
			// Silently ignoring a knob the kind cannot apply would let the
			// row's identity claim a parameter that never took effect.
			return fmt.Errorf("%w: Warm applies to placement cells, not sim cells", ErrBadSweep)
		}
	case KindPlacement:
		if !placementStrategies[strings.ToLower(c.Strategy)] {
			return fmt.Errorf("%w: placement cells compare the offline vocabulary (Metis, Greedy, OmniLedger, T2S), not %q",
				ErrBadSweep, c.Strategy)
		}
		if c.L2SWeight != 0 {
			return fmt.Errorf("%w: L2SWeight applies to sim cells; offline placement has no latency term", ErrBadSweep)
		}
		if c.Rate != 0 {
			return fmt.Errorf("%w: Rate applies to sim cells; offline placement has no arrival process", ErrBadSweep)
		}
		if c.Streamed {
			return fmt.Errorf("%w: Streamed applies to sim cells; offline placement replays a materialized stream", ErrBadSweep)
		}
		if c.Parallelism < 0 {
			return fmt.Errorf("%w: Parallelism %d: worker count cannot be negative", ErrBadSweep, c.Parallelism)
		}
		if c.Parallelism > 1 {
			if strings.EqualFold(c.Strategy, "Metis") {
				return fmt.Errorf("%w: Parallelism applies to epoch-capable strategies; Metis replays a fixed partition serially", ErrBadSweep)
			}
			if c.Warm > 0 {
				return fmt.Errorf("%w: Warm and Parallelism are exclusive; the warm-start replay is inherently serial", ErrBadSweep)
			}
		}
	default:
		return fmt.Errorf("%w: unknown cell kind %q", ErrBadSweep, kind)
	}
	if c.Shards < 1 {
		return fmt.Errorf("%w: cell %s: need at least 1 shard", ErrBadSweep, c.Strategy)
	}
	if wl := c.Workload; wl != "" {
		if _, err := workload.Parse(wl); err != nil {
			return fmt.Errorf("%w: cell workload %q: %v", ErrBadSweep, wl, err)
		}
	}
	return nil
}

// expand resolves the sweep into its canonical cell list, validating every
// name against the open registries.
func (s Sweep) expand(p Params) ([]Cell, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("%w: sweep has no name", ErrBadSweep)
	}
	if len(s.Cells) > 0 {
		// Sweep-level axes and cell defaults do not apply to explicit
		// cells; silently ignoring them would hide misconfiguration.
		switch {
		case len(s.Strategies) > 0, len(s.Protocols) > 0, len(s.Shards) > 0,
			len(s.Rates) > 0, len(s.Workloads) > 0, len(s.Alphas) > 0,
			len(s.L2SWeights) > 0, len(s.Parallelisms) > 0:
			return nil, fmt.Errorf("%w: sweep %q sets axis fields alongside explicit Cells; put the values on the cells", ErrBadSweep, s.Name)
		case s.Txs != 0, s.Warm != 0, s.Tag != "", s.Streaming, s.Kind != "":
			return nil, fmt.Errorf("%w: sweep %q sets cell defaults (Kind/Txs/Warm/Tag/Streaming) alongside explicit Cells; put them on the cells", ErrBadSweep, s.Name)
		}
	}
	// Copy the explicit cell list before normalizing: expand fills Kind and
	// applies the sticky Uncached flag, and writing those through to the
	// caller's backing array would be a hidden side effect of a public API.
	cells := append([]Cell(nil), s.Cells...)
	if len(cells) == 0 {
		kind := s.Kind
		if kind == "" {
			kind = KindSim
		}
		strategies := s.Strategies
		if len(strategies) == 0 {
			if kind == KindPlacement {
				return nil, fmt.Errorf("%w: placement sweep %q needs an explicit strategy axis", ErrBadSweep, s.Name)
			}
			strategies = p.strategies()
		}
		protocols := s.Protocols
		if len(protocols) == 0 {
			protocols = []string{""}
		}
		shards := s.Shards
		if len(shards) == 0 {
			return nil, fmt.Errorf("%w: sweep %q has no shard axis", ErrBadSweep, s.Name)
		}
		rates := s.Rates
		if len(rates) == 0 {
			if kind == KindSim {
				return nil, fmt.Errorf("%w: sim sweep %q has no rate axis", ErrBadSweep, s.Name)
			}
			rates = []float64{0}
		}
		workloads := s.Workloads
		if len(workloads) == 0 {
			workloads = []string{""}
		}
		alphas := s.Alphas
		if len(alphas) == 0 {
			alphas = []float64{0}
		}
		weights := s.L2SWeights
		if len(weights) == 0 {
			weights = []float64{0}
		}
		parallelisms := s.Parallelisms
		if len(parallelisms) == 0 {
			parallelisms = []int{0}
		}
		streaming := s.Streaming || p.Streaming
		for _, wl := range workloads {
			for _, strat := range strategies {
				for _, proto := range protocols {
					for _, k := range shards {
						for _, r := range rates {
							for _, a := range alphas {
								for _, w := range weights {
									for _, par := range parallelisms {
										cells = append(cells, Cell{
											Kind:        kind,
											Strategy:    strat,
											Protocol:    proto,
											Shards:      k,
											Rate:        r,
											Workload:    wl,
											Txs:         s.Txs,
											Warm:        s.Warm,
											Alpha:       a,
											L2SWeight:   w,
											Streamed:    streaming && kind == KindSim,
											Parallelism: par,
											Tag:         s.Tag,
											NoCache:     s.Uncached,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	for i := range cells {
		if cells[i].Kind == "" {
			cells[i].Kind = KindSim
		}
		if s.Uncached {
			cells[i].NoCache = true
		}
		if err := validCell(cells[i], p); err != nil {
			return nil, fmt.Errorf("sweep %q cell %d: %w", s.Name, i, err)
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("%w: sweep %q expands to zero cells", ErrBadSweep, s.Name)
	}
	return cells, nil
}
