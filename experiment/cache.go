package experiment

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// CacheSchema versions the on-disk row-cache layout (see Params.CacheDir).
// A cache file is one JSONL stream: a header line carrying this schema tag
// and the parameters the rows were produced under, then one completed Row
// per line in completion order. Loading a file with any other schema tag
// fails with ErrBadCache.
const CacheSchema = "optchain-rowcache/v1"

// cacheFileName is the row file inside Params.CacheDir.
const cacheFileName = "rows.jsonl"

// cacheHeader is the first line of a cache file. Seed and Validators are
// the only runner parameters a cell ID does not resolve (strategy,
// protocol, workload, stream length, and every per-cell knob are part of
// the ID), so they are the binding fields: a mismatch fails the load. The
// remaining fields are recorded for human inspection only — rows produced
// under different values of those get distinct cell IDs and coexist.
type cacheHeader struct {
	Schema     string `json:"schema"`
	Seed       int64  `json:"seed"`
	Validators int    `json:"validators"`
	N          int    `json:"n"`
	TableN     int    `json:"table_n"`
	Protocol   string `json:"protocol"`
	Workload   string `json:"workload,omitempty"`
}

// newCacheHeader derives the header from default-filled params.
func newCacheHeader(p Params) cacheHeader {
	return cacheHeader{
		Schema:     CacheSchema,
		Seed:       p.Seed,
		Validators: p.Validators,
		N:          p.N,
		TableN:     p.TableN,
		Protocol:   p.Protocol,
		Workload:   p.Workload,
	}
}

// rowCache is the persistent row store behind Params.CacheDir: an
// append-only JSONL file mirrored by an in-memory index. Appends happen as
// cells complete (one Write per row), so an interrupted run leaves a valid
// prefix and the next run resumes from it.
type rowCache struct {
	path string

	mu   sync.Mutex
	f    *os.File       // guarded by mu — append handle
	rows map[string]Row // guarded by mu — loaded entries by cell ID
}

// openRowCache opens (creating if absent) the cache file under dir and
// loads its rows. Any malformed content — bad header, corrupt or truncated
// line, duplicate cell ID, parameter mismatch — fails with ErrBadCache.
func openRowCache(dir string, p Params) (*rowCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: create cache dir: %v", ErrBadCache, err)
	}
	path := filepath.Join(dir, cacheFileName)
	want := newCacheHeader(p)
	c := &rowCache{path: path, rows: make(map[string]Row)}
	if data, err := os.Open(path); err == nil {
		rows, lerr := loadCacheRows(data, want)
		if cerr := data.Close(); lerr == nil && cerr != nil {
			lerr = fmt.Errorf("%w: close %s: %v", ErrBadCache, path, cerr)
		}
		if lerr != nil {
			return nil, fmt.Errorf("%s: %w", path, lerr)
		}
		c.rows = rows
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: open %s: %v", ErrBadCache, path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: open %s for append: %v", ErrBadCache, path, err)
	}
	c.f = f
	if len(c.rows) == 0 {
		// Fresh (or empty) file: write the header line. An existing
		// non-empty file already validated its header in loadCacheRows.
		if fi, err := f.Stat(); err == nil && fi.Size() == 0 {
			line, merr := json.Marshal(want)
			if merr != nil {
				_ = f.Close()
				return nil, fmt.Errorf("%w: encode header: %v", ErrBadCache, merr)
			}
			if _, err := f.Write(append(line, '\n')); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("%w: write header: %v", ErrBadCache, err)
			}
		}
	}
	return c, nil
}

// loadCacheRows decodes one cache file: the header line (validated against
// want), then one Row per line. Every defect is an ErrBadCache naming the
// line and, when known, the cell ID involved — a poisoned cache must fail
// loudly, not silently recompute.
func loadCacheRows(r io.Reader, want cacheHeader) (map[string]Row, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("%w: read header: %v", ErrBadCache, err)
		}
		// Empty file: treated as fresh (the caller writes the header).
		return make(map[string]Row), nil
	}
	var h cacheHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Schema == "" {
		return nil, fmt.Errorf("%w: line 1 is not a cache header (want schema %q)", ErrBadCache, CacheSchema)
	}
	if h.Schema != CacheSchema {
		return nil, fmt.Errorf("%w: schema %q, want %q", ErrBadCache, h.Schema, CacheSchema)
	}
	if h.Seed != want.Seed || h.Validators != want.Validators {
		return nil, fmt.Errorf("%w: cache written under seed=%d validators=%d, runner has seed=%d validators=%d",
			ErrBadCache, h.Seed, h.Validators, want.Seed, want.Validators)
	}
	rows := make(map[string]Row)
	lastID := ""
	for line := 2; sc.Scan(); line++ {
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var row Row
		if err := json.Unmarshal(text, &row); err != nil {
			return nil, fmt.Errorf("%w: line %d corrupt (after cell %q): %v", ErrBadCache, line, lastID, err)
		}
		if row.ID == "" {
			return nil, fmt.Errorf("%w: line %d has no cell ID (after cell %q)", ErrBadCache, line, lastID)
		}
		if _, dup := rows[row.ID]; dup {
			return nil, fmt.Errorf("%w: line %d duplicates cell %q", ErrBadCache, line, row.ID)
		}
		rows[row.ID] = row
		lastID = row.ID
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: read after cell %q: %v", ErrBadCache, lastID, err)
	}
	return rows, nil
}

// get returns the cached row for a cell ID, if present.
func (c *rowCache) get(id string) (Row, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	row, ok := c.rows[id]
	return row, ok
}

// put persists one completed row, keyed by its cell ID. Entries are pure
// cell data: sweep identity (Sweep, Index) and host timing (WallSeconds)
// are zeroed so the same cell caches to identical bytes regardless of
// which sweep produced it first, making an interrupted-then-resumed cache
// file byte-identical to an uninterrupted one. Re-putting a present ID is
// a no-op (an Uncached baseline cell must not append duplicates).
func (c *rowCache) put(row Row) error {
	row.Sweep = ""
	row.Index = 0
	row.WallSeconds = 0
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.rows[row.ID]; ok {
		return nil
	}
	if c.f == nil {
		return fmt.Errorf("%w: cache closed before cell %q could persist", ErrBadCache, row.ID)
	}
	line, err := json.Marshal(row)
	if err != nil {
		return fmt.Errorf("%w: encode cell %q: %v", ErrBadCache, row.ID, err)
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("%w: append cell %q to %s: %v", ErrBadCache, row.ID, c.path, err)
	}
	c.rows[row.ID] = row
	return nil
}

// Close releases the append handle. Safe to call once; the Runner owns the
// lifecycle.
func (c *rowCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
