package experiment

import (
	"strconv"

	"optchain/internal/sim"
)

// Row is one typed sweep result — the unit Reporters consume. Identity
// fields (ID, Sweep, Index) are a pure function of the sweep definition;
// metric fields come from the cell's execution. Sim cells fill the
// simulation metrics; placement cells fill Cross/CrossPct and leave the
// simulation block zero.
type Row struct {
	// ID is the cell's stable identity (see Cell), independent of worker
	// scheduling and of which sweep the cell appears in.
	ID string `json:"id"`
	// Sweep is the name of the sweep that produced this row.
	Sweep string `json:"sweep"`
	// Index is the row's position in the sweep's canonical cell order.
	Index int `json:"index"`

	// Kind, Strategy, Protocol, Shards, Rate, Workload, and Txs echo the
	// resolved cell (defaults filled in).
	Kind     Kind    `json:"kind"`
	Strategy string  `json:"strategy"`
	Protocol string  `json:"protocol,omitempty"`
	Shards   int     `json:"shards"`
	Rate     float64 `json:"rate,omitempty"`
	Workload string  `json:"workload"`
	Txs      int     `json:"txs"`
	// Streamed reports whether the cell's workload was streamed (pulled one
	// transaction per issue event) or materialized. Metis cells inside a
	// streaming sweep materialize, and this field says so.
	Streamed bool `json:"streamed"`
	// Tag echoes the cell tag, when set.
	Tag string `json:"tag,omitempty"`

	// Simulation metrics (KindSim).
	Total         int     `json:"total,omitempty"`
	Committed     int     `json:"committed,omitempty"`
	SteadyTPS     float64 `json:"steady_tps,omitempty"`
	ThroughputTPS float64 `json:"throughput_tps,omitempty"`
	AvgLatencySec float64 `json:"avg_latency_sec,omitempty"`
	MaxLatencySec float64 `json:"max_latency_sec,omitempty"`
	P50Sec        float64 `json:"p50_sec,omitempty"`
	P99Sec        float64 `json:"p99_sec,omitempty"`
	Retries       int64   `json:"retries,omitempty"`
	Aborts        int64   `json:"aborts,omitempty"`
	PeakQueue     int     `json:"peak_queue,omitempty"`

	// Placement metrics. CrossFraction is shared: both kinds report the
	// fraction of cross-shard transactions; placement cells additionally
	// report the raw count over their measured window (Table II's metric).
	CrossFraction float64 `json:"cross_fraction"`
	Cross         int64   `json:"cross,omitempty"`
	// Parallelism echoes the cell's epoch worker count (0 for serial
	// replay); CrossChunkFraction is the fraction of input references the
	// parallel replay could not see because they pointed into a concurrent
	// chunk — the measured decision-drift source, 0 for serial cells and
	// for Parallelism 1.
	Parallelism        int     `json:"parallelism,omitempty"`
	CrossChunkFraction float64 `json:"cross_chunk_fraction,omitempty"`

	// WallSeconds is the host time the cell took to execute (0 when the
	// row was served from the runner's cache).
	WallSeconds float64 `json:"wall_seconds"`

	// Result is the full simulation record (window timelines, queue series,
	// latency CDF) for figure rendering. Nil for placement cells. Not
	// serialized: reporters carry the flat fields above.
	Result *sim.Result `json:"-"`
	// Cell is the resolved cell that produced the row. Not serialized.
	Cell Cell `json:"-"`
}

// Field is one (name, value) pair of a row's canonical tabular form.
type Field struct {
	Name  string
	Value string
}

// fnum formats a float the way every tabular reporter shares: shortest
// round-trip representation, so text, CSV, and JSONL carry identical
// numbers for the same seed.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Fields returns the row's canonical tabular form — the column set and
// order the text and CSV reporters share. WallSeconds is deliberately
// excluded: it is host noise, and tabular outputs stay byte-comparable
// across runs of the same seed (JSONL carries it for profiling).
func (r Row) Fields() []Field {
	return []Field{
		{"id", r.ID},
		{"sweep", r.Sweep},
		{"index", strconv.Itoa(r.Index)},
		{"kind", string(r.Kind)},
		{"strategy", r.Strategy},
		{"protocol", r.Protocol},
		{"shards", strconv.Itoa(r.Shards)},
		{"rate", fnum(r.Rate)},
		{"workload", r.Workload},
		{"txs", strconv.Itoa(r.Txs)},
		{"streamed", strconv.FormatBool(r.Streamed)},
		{"total", strconv.Itoa(r.Total)},
		{"committed", strconv.Itoa(r.Committed)},
		{"steady_tps", fnum(r.SteadyTPS)},
		{"throughput_tps", fnum(r.ThroughputTPS)},
		{"avg_latency_sec", fnum(r.AvgLatencySec)},
		{"max_latency_sec", fnum(r.MaxLatencySec)},
		{"p50_sec", fnum(r.P50Sec)},
		{"p99_sec", fnum(r.P99Sec)},
		{"retries", strconv.FormatInt(r.Retries, 10)},
		{"aborts", strconv.FormatInt(r.Aborts, 10)},
		{"peak_queue", strconv.Itoa(r.PeakQueue)},
		{"cross_fraction", fnum(r.CrossFraction)},
		{"cross", strconv.FormatInt(r.Cross, 10)},
		{"parallelism", strconv.Itoa(r.Parallelism)},
		{"cross_chunk_fraction", fnum(r.CrossChunkFraction)},
	}
}
