// Package experiment is the public sweep layer: declarative experiment
// grids over the paper's axes (shard count, offered rate, placement
// strategy, commit protocol, workload spec), executed by a Runner that
// streams typed Rows as cells complete into pluggable Reporter sinks.
//
// The paper's evidence is its sweep figures (Tables I-II, Figs. 2-11);
// internal/bench renders those exact layouts, but the machinery that runs
// them is this package — open, so sweeps compose and results are data:
//
//	r := experiment.NewRunner(experiment.Params{N: 60_000, Seed: 1})
//	sweep := experiment.Sweep{
//	    Name:       "latency-grid",
//	    Strategies: []string{"OptChain", "OmniLedger"},
//	    Shards:     []int{4, 8, 16},
//	    Rates:      []float64{2000, 4000, 6000},
//	}
//	for row, err := range r.Stream(ctx, sweep) { ... }
//
// Three registries mirror optchain.RegisterStrategy / RegisterProtocol /
// RegisterWorkload:
//
//   - RegisterReporter: result sinks. Built-ins: "text" (aligned table),
//     "jsonl" (one JSON object per row), "csv", and "baseline" (the
//     BENCH_baseline.json writer, schema v4).
//   - RegisterSweep: named sweep definitions, selectable from
//     cmd/optchain-bench via -sweep / -list-sweeps. internal/bench
//     registers the paper's grids (grid, peak, scenarios, table1, ...).
//   - Strategy/protocol/workload names inside a Sweep resolve through the
//     existing open registries, so externally registered extensions sweep
//     exactly like built-ins.
//
// # Execution model
//
// Runner.Stream returns an iter.Seq2[Row, error]: cells fan out across the
// worker budget (every cell seeds its own RNG from Params.Seed, so results
// are independent of scheduling), and rows are delivered in canonical cell
// order as the completion frontier advances — row identity (Row.ID) is a
// pure function of the cell, never of timing. Cancelling the context stops
// the sweep promptly (in-flight simulations abort between events); rows
// already delivered remain valid, and Report flushes them to the reporter
// before returning the cancellation error.
//
// Expensive shared artifacts — materialized datasets and Metis partitions —
// are built once per key behind a singleflight cache inside the Runner, so
// concurrent cells needing the same dataset block on one computation.
//
// # Streaming sweeps
//
// Sweep.Streaming drives every cell from a workload.Source pulled one
// transaction per issue event — nothing is materialized, so `mix:` and
// `replay:` specs with arrival modulation (burst/drift Gap shaping) bend
// the figure grids too. The Metis strategy is the exception: it replays an
// offline partition of the full graph, so its cells materialize the
// workload regardless, and the row says so (Row.Streamed=false).
package experiment

import (
	"errors"
	"runtime"
)

// Typed errors. Match with errors.Is.
var (
	// ErrBadSweep reports an invalid sweep definition (empty axis value,
	// unknown strategy/protocol/workload name, bad cell).
	ErrBadSweep = errors.New("experiment: invalid sweep")
	// ErrUnknownReporter reports a reporter name with no registered factory.
	ErrUnknownReporter = errors.New("experiment: unknown reporter")
	// ErrBadReporterOption reports a reporter option the named reporter does
	// not take — misspelled knobs fail instead of being silently inert.
	ErrBadReporterOption = errors.New("experiment: invalid reporter option")
	// ErrUnknownSweep reports a sweep name with no registered builder.
	ErrUnknownSweep = errors.New("experiment: unknown sweep")
	// ErrBadRegistration reports an invalid registry call (empty name, nil
	// factory or builder, duplicate name) for reporters and sweeps.
	ErrBadRegistration = errors.New("experiment: invalid registration")
	// ErrBadCache reports an unusable row cache or diff input: a corrupt or
	// truncated cache line, a duplicate cell ID, a schema mismatch, or a
	// cache written under different parameters (seed, validators). Damage is
	// never silently recomputed around — delete the cache directory to
	// rebuild it from scratch.
	ErrBadCache = errors.New("experiment: bad row cache")
	// ErrQualityRegression reports a quality-gate failure: Diff found at
	// least one joined cell whose metrics moved in the worse direction
	// beyond tolerance, or cells missing from the new run when the
	// tolerances require full coverage.
	ErrQualityRegression = errors.New("experiment: placement quality regression")
)

// Params scales sweep execution. Zero values take defaults. The same value
// parameterizes every sweep a Runner executes, so cached cells are shared
// across sweeps (the fig3 grid warms the cells figs 4-10 present as
// different views).
type Params struct {
	// N is the stream length for simulation cells (default 60k; the paper
	// used 10M — the reported shapes are scale-stable).
	N int
	// TableN is the stream length for offline placement cells (default
	// 200k).
	TableN int
	// Seed drives dataset generation and simulations.
	Seed int64
	// Validators per shard (default 400, the paper's committee size).
	Validators int
	// Quick shrinks every grid for smoke tests and testing.B benchmarks.
	Quick bool
	// Workers bounds parallel cell execution (default GOMAXPROCS).
	Workers int
	// Protocol is the default commit backend for sweeps that don't pin one
	// (default omniledger, the paper's). Resolved by name through the open
	// registry.
	Protocol string
	// Strategies overrides the default strategy axis (default: OptChain,
	// OmniLedger, Metis, Greedy — the paper's four).
	Strategies []string
	// Workloads overrides the scenario set of the `scenarios` sweep and the
	// baseline's per-scenario section (default: every standalone registered
	// workload scenario). Entries may be full workload specs.
	Workloads []string
	// Workload is the default workload spec driving cells that don't pin
	// one: a spec ("hotspot:exp=1.5", "mix:bitcoin=0.7,hotspot=0.3",
	// "replay:trace.tan") used in place of the calibrated Bitcoin-like
	// generator. Empty selects the calibrated default.
	Workload string
	// Streaming makes sim sweeps drive their cells from streaming workload
	// sources instead of materialized datasets (see the package comment;
	// Sweep.Streaming pins it per sweep).
	Streaming bool
	// CacheDir enables the persistent row cache: every completed cell's Row
	// is appended to CacheDir/rows.jsonl keyed by its stable cell ID, and
	// re-runs serve cached rows instead of re-simulating — an interrupted
	// grid resumes where it died. Cached rows are flat data: WallSeconds is
	// zeroed and Row.Result is nil (the figure renderers need Result and
	// keep using the in-memory cache). The file binds to Seed and
	// Validators; opening it under different values fails with ErrBadCache,
	// as does any corrupt or truncated line — damage is loud, never a
	// silent recompute. Empty disables persistence.
	CacheDir string
}

func (p *Params) fillDefaults() {
	if p.N <= 0 {
		p.N = 60_000
	}
	if p.TableN <= 0 {
		p.TableN = 200_000
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Validators <= 0 {
		p.Validators = 400
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	if p.Protocol == "" {
		p.Protocol = "omniledger"
	}
	if p.Quick {
		if p.N > 12_000 {
			p.N = 12_000
		}
		if p.TableN > 30_000 {
			p.TableN = 30_000
		}
		if p.Validators > 16 {
			p.Validators = 16
		}
	}
}

// DefaultStrategies is the strategy axis sweeps compare when neither the
// sweep nor Params pins one — the paper's four.
func DefaultStrategies() []string {
	return []string{"OptChain", "OmniLedger", "Metis", "Greedy"}
}

// strategies resolves the effective default strategy axis.
func (p Params) strategies() []string {
	if len(p.Strategies) > 0 {
		return p.Strategies
	}
	return DefaultStrategies()
}

// WorkloadLabel names the stream driving cells with no per-cell workload
// spec — the Params.Workload spec, or the calibrated default.
func (p Params) WorkloadLabel() string {
	if p.Workload == "" {
		return "bitcoin"
	}
	return p.Workload
}
