package experiment_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optchain/experiment"
)

// qrow builds a minimal quality row for diff tests.
func qrow(id string, tps, cross float64) experiment.Row {
	return experiment.Row{ID: id, Kind: experiment.KindSim, Strategy: "OptChain",
		Shards: 2, Workload: "w", SteadyTPS: tps, CrossFraction: cross}
}

// metricVerdict extracts one metric's verdict from a report cell.
func metricVerdict(t *testing.T, rep *experiment.DiffReport, id, metric string) (experiment.MetricDelta, bool) {
	t.Helper()
	for _, c := range rep.Cells {
		if c.ID != id {
			continue
		}
		for _, m := range c.Metrics {
			if m.Metric == metric {
				return m, true
			}
		}
	}
	return experiment.MetricDelta{}, false
}

func TestDiffClassification(t *testing.T) {
	tol := experiment.Tolerances{SteadyTPS: 0.05, CrossFraction: 0.05, CrossChunkFraction: 0.05}
	old := []experiment.Row{
		qrow("a", 1000, 0.5), // tps drops 10%: regressed
		qrow("b", 1000, 0.5), // tps rises 10%: improved
		qrow("c", 1000, 0.5), // inside the band: unchanged
		qrow("d", 1000, 0.5), // cross rises 20%: regressed
		qrow("e", 1000, 0),   // cross appears from zero: +inf, regressed
	}
	new := []experiment.Row{
		qrow("a", 900, 0.5),
		qrow("b", 1100, 0.5),
		qrow("c", 1001, 0.49),
		qrow("d", 1000, 0.6),
		qrow("e", 1000, 0.01),
	}
	rep, err := experiment.Diff(old, new, tol)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]experiment.Verdict{
		"a": experiment.VerdictRegressed,
		"b": experiment.VerdictImproved,
		"c": experiment.VerdictUnchanged,
		"d": experiment.VerdictRegressed,
		"e": experiment.VerdictRegressed,
	}
	if len(rep.Cells) != len(want) {
		t.Fatalf("joined %d cells, want %d", len(rep.Cells), len(want))
	}
	for _, c := range rep.Cells {
		if c.Verdict != want[c.ID] {
			t.Errorf("cell %s verdict %s, want %s", c.ID, c.Verdict, want[c.ID])
		}
	}
	if m, ok := metricVerdict(t, rep, "e", "cross_fraction"); !ok || !math.IsInf(m.Rel, 1) {
		t.Errorf("cross appearing from zero: rel = %v, want +inf", m.Rel)
	}
	regressed, improved, unchanged := rep.Counts()
	if regressed != 3 || improved != 1 || unchanged != 1 {
		t.Errorf("counts = %d/%d/%d, want 3/1/1", regressed, improved, unchanged)
	}
	if err := rep.Err(); !errors.Is(err, experiment.ErrQualityRegression) {
		t.Errorf("Err() = %v, want ErrQualityRegression", err)
	} else if !strings.Contains(err.Error(), "a") {
		t.Errorf("Err() %q does not name the first regressed cell", err)
	}
}

// TestDiffZeroToleranceExact: the golden-test oracle — zero tolerances
// demand exact reproduction, so the tiniest delta classifies.
func TestDiffZeroToleranceExact(t *testing.T) {
	old := []experiment.Row{qrow("a", 1000, 0.5)}
	same, err := experiment.Diff(old, []experiment.Row{qrow("a", 1000, 0.5)}, experiment.Tolerances{})
	if err != nil {
		t.Fatal(err)
	}
	if err := same.Err(); err != nil {
		t.Fatalf("identical rows at zero tolerance: %v", err)
	}
	drift, err := experiment.Diff(old, []experiment.Row{qrow("a", 999.9999, 0.5)}, experiment.Tolerances{})
	if err != nil {
		t.Fatal(err)
	}
	if err := drift.Err(); !errors.Is(err, experiment.ErrQualityRegression) {
		t.Fatalf("sub-ppm drift at zero tolerance: %v, want ErrQualityRegression", err)
	}
}

func TestDiffNsPerTxOptIn(t *testing.T) {
	mk := func(wall float64) experiment.Row {
		r := qrow("a", 1000, 0.5)
		r.Total = 1000
		r.WallSeconds = wall
		return r
	}
	// Disabled by default: a 3x wall-clock blowup is not a regression.
	rep, err := experiment.Diff([]experiment.Row{mk(1)}, []experiment.Row{mk(3)}, experiment.DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("ns/tx compared while disabled: %v", err)
	}
	// Opted in, the same delta regresses.
	tol := experiment.DefaultTolerances()
	tol.NsPerTx = 0.5
	rep, err = experiment.Diff([]experiment.Row{mk(1)}, []experiment.Row{mk(3)}, tol)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); !errors.Is(err, experiment.ErrQualityRegression) {
		t.Fatalf("ns/tx +200%% at 50%% tolerance: %v, want ErrQualityRegression", err)
	}
	if m, ok := metricVerdict(t, rep, "a", "ns_per_tx"); !ok || m.Verdict != experiment.VerdictRegressed {
		t.Fatalf("ns_per_tx delta = %+v, want regressed", m)
	}
}

func TestDiffMissingAndNewCells(t *testing.T) {
	old := []experiment.Row{qrow("a", 1000, 0.5), qrow("gone", 1000, 0.5)}
	new := []experiment.Row{qrow("a", 1000, 0.5), qrow("fresh", 1000, 0.5)}

	strict, err := experiment.Diff(old, new, experiment.DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Missing) != 1 || strict.Missing[0] != "gone" || len(strict.New) != 1 || strict.New[0] != "fresh" {
		t.Fatalf("missing/new = %v / %v", strict.Missing, strict.New)
	}
	if err := strict.Err(); !errors.Is(err, experiment.ErrQualityRegression) || !strings.Contains(err.Error(), "gone") {
		t.Fatalf("missing cell under strict tolerances: %v", err)
	}

	tol := experiment.DefaultTolerances()
	tol.AllowMissing = true
	loose, err := experiment.Diff(old, new, tol)
	if err != nil {
		t.Fatal(err)
	}
	if err := loose.Err(); err != nil {
		t.Fatalf("missing cell with AllowMissing: %v", err)
	}
}

func TestDiffRejectsBadRowSets(t *testing.T) {
	a, b := qrow("a", 1, 0), qrow("b", 1, 0)
	for name, tc := range map[string]struct{ old, new []experiment.Row }{
		"no common cells": {old: []experiment.Row{a}, new: []experiment.Row{b}},
		"duplicate old":   {old: []experiment.Row{a, a}, new: []experiment.Row{a}},
		"duplicate new":   {old: []experiment.Row{a}, new: []experiment.Row{a, a}},
		"empty id":        {old: []experiment.Row{a}, new: []experiment.Row{{}}},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := experiment.Diff(tc.old, tc.new, experiment.DefaultTolerances()); !errors.Is(err, experiment.ErrBadCache) {
				t.Fatalf("err = %v, want ErrBadCache", err)
			}
		})
	}
}

// TestDiffInjectedRegression is the gate's acceptance demo: perturbing one
// real sweep row's steady-tps beyond tolerance turns a passing diff into
// ErrQualityRegression, both through Diff and through the diff reporter
// gating a live sweep (the `optchain-bench -reporter diff:...` path).
func TestDiffInjectedRegression(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	rows, err := r.Collect(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}

	// Identical rows pass the gate.
	rep, err := experiment.Diff(rows, rows, experiment.DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("self-diff: %v", err)
	}

	// Inject a 20% steady-tps drop into one cell.
	perturbed := make([]experiment.Row, len(rows))
	copy(perturbed, rows)
	perturbed[1].SteadyTPS *= 0.8
	rep, err = experiment.Diff(rows, perturbed, experiment.DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); !errors.Is(err, experiment.ErrQualityRegression) || !strings.Contains(err.Error(), perturbed[1].ID) {
		t.Fatalf("injected regression: %v, want ErrQualityRegression naming %s", err, perturbed[1].ID)
	}
	var table bytes.Buffer
	if err := rep.Render(&table); err != nil {
		t.Fatal(err)
	}
	if out := table.String(); !strings.Contains(out, "REGRESSED") || !strings.Contains(out, perturbed[1].ID) {
		t.Fatalf("verdict table does not show the regression:\n%s", out)
	}

	// The reporter path: gate a live sweep against a stored row set whose
	// recorded throughput is 20% higher than reality for one cell.
	inflated := make([]experiment.Row, len(rows))
	copy(inflated, rows)
	inflated[1].SteadyTPS *= 1.25
	dir := t.TempDir()
	writeRowsFile(t, filepath.Join(dir, "old.jsonl"), inflated)
	gate, err := experiment.NewReporter("diff:old="+filepath.Join(dir, "old.jsonl"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Report(context.Background(), tinySweep(), gate); !errors.Is(err, experiment.ErrQualityRegression) {
		t.Fatalf("diff reporter gate: %v, want ErrQualityRegression", err)
	}

	// And against the honest record, the same sweep passes.
	writeRowsFile(t, filepath.Join(dir, "honest.jsonl"), rows)
	gate, err = experiment.NewReporter("diff:old="+filepath.Join(dir, "honest.jsonl"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Report(context.Background(), tinySweep(), gate); err != nil {
		t.Fatalf("diff reporter against honest record: %v", err)
	}
}

func writeRowsFile(t *testing.T, path string, rows []experiment.Row) {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range rows {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRowsForms(t *testing.T) {
	jsonl := `{"id":"a","kind":"sim","strategy":"OptChain","shards":2,"workload":"w","txs":10,"streamed":false,"cross_fraction":0.5,"steady_tps":100,"wall_seconds":1}
{"id":"b","kind":"sim","strategy":"OptChain","shards":4,"workload":"w","txs":10,"streamed":false,"cross_fraction":0.4,"steady_tps":200,"wall_seconds":1}
`
	cacheFile := `{"schema":"optchain-rowcache/v1","seed":1,"validators":4,"n":1200,"table_n":3000,"protocol":"omniledger"}
{"id":"a","kind":"sim","strategy":"OptChain","shards":2,"workload":"w","txs":10,"streamed":false,"cross_fraction":0.5,"steady_tps":100,"wall_seconds":0}
`
	baseline, err := json.Marshal(experiment.Baseline{
		Schema: experiment.BaselineSchema,
		Sim: []experiment.BaselineSim{
			{CellID: "a", Strategy: "OptChain", Protocol: "omniledger", Shards: 2, Workload: "w", Txs: 10, SteadyTPS: 100, CrossFraction: 0.5},
		},
		Scenarios: []experiment.BaselineSim{
			{CellID: "s", Strategy: "OptChain", Protocol: "omniledger", Shards: 8, Workload: "hotspot", Txs: 10, SteadyTPS: 50, CrossFraction: 0.4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	for name, tc := range map[string]struct {
		in   string
		ids  []string
		tps0 float64
	}{
		"jsonl":    {in: jsonl, ids: []string{"a", "b"}, tps0: 100},
		"cache":    {in: cacheFile, ids: []string{"a"}, tps0: 100},
		"baseline": {in: string(baseline), ids: []string{"a", "s"}, tps0: 100},
	} {
		t.Run(name, func(t *testing.T) {
			rows, err := experiment.DecodeRows(strings.NewReader(tc.in))
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != len(tc.ids) {
				t.Fatalf("decoded %d rows, want %d", len(rows), len(tc.ids))
			}
			for i, id := range tc.ids {
				if rows[i].ID != id {
					t.Fatalf("row %d id %q, want %q", i, rows[i].ID, id)
				}
			}
			if rows[0].SteadyTPS != tc.tps0 {
				t.Fatalf("row 0 steady_tps %v, want %v", rows[0].SteadyTPS, tc.tps0)
			}
		})
	}

	// Baseline scenario rows decode as streamed, sim rows as materialized.
	rows, err := experiment.DecodeRows(bytes.NewReader(baseline))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Streamed || !rows[1].Streamed {
		t.Fatalf("baseline streamed markers: sim=%v scenarios=%v", rows[0].Streamed, rows[1].Streamed)
	}
}

func TestDecodeRowsRejectsMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"garbage":                "not json at all",
		"row without id":         `{"kind":"sim"}`,
		"duplicate ids":          `{"id":"a"}` + "\n" + `{"id":"a"}`,
		"unknown schema":         `{"schema":"optchain-somethingelse/v1"}`,
		"old cache schema":       `{"schema":"optchain-rowcache/v0"}`,
		"old baseline schema":    `{"schema":"optchain-bench-baseline/v3"}`,
		"trailing after record":  `{"schema":"` + experiment.BaselineSchema + `","sim":[{"cell_id":"a"}]}` + "\n" + `{"id":"b"}`,
		"baseline row sans cell": `{"schema":"` + experiment.BaselineSchema + `","sim":[{"strategy":"OptChain"}]}`,
		"truncated value":        `{"id":"a","steady_tps":`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := experiment.DecodeRows(strings.NewReader(in)); !errors.Is(err, experiment.ErrBadCache) {
				t.Fatalf("err = %v, want ErrBadCache", err)
			}
		})
	}
}

func TestDiffReporterOptionValidation(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.jsonl")
	writeRowsFile(t, old, []experiment.Row{qrow("a", 100, 0.5)})
	for name, spec := range map[string]string{
		"no old file":       "diff",
		"empty old":         "diff:old=",
		"unknown option":    "diff:old=" + old + ",bogus=1",
		"bad tolerance":     "diff:old=" + old + ",tps=abc",
		"negative":          "diff:old=" + old + ",cross=-0.1",
		"bad missing":       "diff:old=" + old + ",missing=maybe",
		"unreadable source": "diff:old=" + filepath.Join(dir, "absent.jsonl"),
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := experiment.NewReporter(spec, io.Discard); err == nil {
				t.Fatalf("spec %q accepted", spec)
			}
		})
	}
	// The happy spec parses, with every knob set.
	if _, err := experiment.NewReporter("diff:old="+old+",tps=0.1,cross=0.2,crosschunk=0.3,nstx=0.4,missing=on", io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestDiffFiles drives the CLI engine end-to-end over the two file forms.
func TestDiffFiles(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	rows, err := r.Collect(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.jsonl")
	newPath := filepath.Join(dir, "new.jsonl")
	writeRowsFile(t, oldPath, rows)
	writeRowsFile(t, newPath, rows)
	rep, err := experiment.DiffFiles(oldPath, newPath, experiment.DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("identical files: %v", err)
	}
	if _, err := experiment.DiffFiles(oldPath, filepath.Join(dir, "absent.jsonl"), experiment.DefaultTolerances()); !errors.Is(err, experiment.ErrBadCache) {
		t.Fatalf("absent file: %v, want ErrBadCache", err)
	}
}
