package experiment_test

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"

	"optchain/experiment"
)

func TestReporterRegistry(t *testing.T) {
	for _, want := range []string{"text", "jsonl", "csv", "baseline"} {
		if !experiment.HasReporter(want) {
			t.Fatalf("built-in reporter %q missing (have %v)", want, experiment.Reporters())
		}
	}
	if _, err := experiment.NewReporter("nope", &strings.Builder{}); !errors.Is(err, experiment.ErrUnknownReporter) {
		t.Fatalf("unknown reporter err = %v", err)
	}
	if err := experiment.RegisterReporter("text", nil); err == nil {
		t.Fatal("duplicate/nil registration accepted")
	}
}

// TestReporterKnobValidation: unknown reporter options fail loudly instead
// of being silently inert.
func TestReporterKnobValidation(t *testing.T) {
	var sb strings.Builder
	for _, spec := range []string{"jsonl:compact=yes", "csv:sep=tab", "text:width=9", "baseline:nope=1", "csv:header=maybe"} {
		if _, err := experiment.NewReporter(spec, &sb); !errors.Is(err, experiment.ErrBadReporterOption) {
			t.Errorf("NewReporter(%q) err = %v, want ErrBadReporterOption", spec, err)
		}
	}
	// Valid knobs parse.
	for _, spec := range []string{"csv:header=off", "text:header=off", "baseline:stamp=off"} {
		if _, err := experiment.NewReporter(spec, &sb); err != nil {
			t.Errorf("NewReporter(%q): %v", spec, err)
		}
	}
}

// TestReporterEquivalence proves the JSONL, CSV, and text reporters carry
// identical numbers for the same seed: every shared field of every row
// must be value-equal across the three serializations.
func TestReporterEquivalence(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	s := tinySweep()

	var jsonlOut, csvOut, textOut strings.Builder
	for _, rep := range []struct {
		spec string
		w    *strings.Builder
	}{
		{"jsonl", &jsonlOut}, {"csv", &csvOut}, {"text", &textOut},
	} {
		sink, err := experiment.NewReporter(rep.spec, rep.w)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Report(context.Background(), s, sink); err != nil {
			t.Fatal(err)
		}
	}

	// Parse JSONL rows.
	var jsonRows []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(jsonlOut.String()), "\n") {
		m := map[string]any{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("jsonl line %q: %v", line, err)
		}
		jsonRows = append(jsonRows, m)
	}

	// Parse CSV rows into name->value maps.
	recs, err := csv.NewReader(strings.NewReader(csvOut.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(jsonRows)+1 {
		t.Fatalf("csv rows = %d, jsonl rows = %d", len(recs)-1, len(jsonRows))
	}
	header := recs[0]
	csvRows := make([]map[string]string, 0, len(recs)-1)
	for _, rec := range recs[1:] {
		m := map[string]string{}
		for i, name := range header {
			m[name] = rec[i]
		}
		csvRows = append(csvRows, m)
	}

	// Parse the text table (whitespace-aligned; same canonical values).
	textLines := strings.Split(strings.TrimSpace(textOut.String()), "\n")
	// line 0: sweep banner, line 1: header, then rows.
	if len(textLines) != len(jsonRows)+2 {
		t.Fatalf("text lines = %d:\n%s", len(textLines), textOut.String())
	}
	textHeader := strings.Fields(textLines[1])
	textRows := make([]map[string]string, 0, len(jsonRows))
	for _, line := range textLines[2:] {
		fields := strings.Fields(line)
		if len(fields) != len(textHeader) {
			t.Fatalf("text row field count %d vs header %d: %q", len(fields), len(textHeader), line)
		}
		m := map[string]string{}
		for i, name := range textHeader {
			m[name] = fields[i]
		}
		textRows = append(textRows, m)
	}

	// Every canonical numeric field must agree across the three sinks.
	numeric := []string{"shards", "rate", "total", "committed", "steady_tps",
		"throughput_tps", "avg_latency_sec", "max_latency_sec", "p50_sec",
		"p99_sec", "retries", "aborts", "peak_queue", "cross_fraction", "cross",
		"parallelism", "cross_chunk_fraction"}
	stringly := []string{"id", "sweep", "strategy", "protocol", "workload", "streamed"}
	for i := range jsonRows {
		for _, f := range numeric {
			jv := jsonNum(t, jsonRows[i], f)
			cv := parseNum(t, f, csvRows[i][f])
			if jv != cv {
				t.Fatalf("row %d field %s: jsonl %v vs csv %v", i, f, jv, cv)
			}
			if tv, ok := textRows[i][f]; ok { // text shows a column subset
				if parseNum(t, f, tv) != jv {
					t.Fatalf("row %d field %s: text %v vs jsonl %v", i, f, tv, jv)
				}
			}
		}
		for _, f := range stringly {
			js, _ := jsonRows[i][f].(string)
			if f == "streamed" {
				js = strconv.FormatBool(jsonRows[i][f] == true)
			}
			if js != csvRows[i][f] {
				t.Fatalf("row %d field %s: jsonl %q vs csv %q", i, f, js, csvRows[i][f])
			}
			if tv, ok := textRows[i][f]; ok && tv != js {
				t.Fatalf("row %d field %s: text %q vs jsonl %q", i, f, tv, js)
			}
		}
	}
}

// jsonNum reads a numeric field from a decoded JSONL row (absent fields
// are zero: omitempty).
func jsonNum(t *testing.T, m map[string]any, field string) float64 {
	t.Helper()
	v, ok := m[field]
	if !ok {
		return 0
	}
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("field %s is %T", field, v)
	}
	return f
}

func parseNum(t *testing.T, field, s string) float64 {
	t.Helper()
	if s == "" {
		return 0
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("field %s value %q: %v", field, s, err)
	}
	return f
}

// TestBaselineReporterRouting: streamed rows land in the Scenarios
// section, materialized rows in Sim, each with a stable cell ID and the
// reporter provenance stamped at schema v4.
func TestBaselineReporterRouting(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	var sb strings.Builder
	rep := experiment.NewBaselineReporter(&sb)
	rep.Stamp = false

	s := tinySweep()
	if err := r.Report(context.Background(), s, rep); err != nil {
		t.Fatal(err)
	}
	streamed := experiment.Sweep{
		Name:       "streamed",
		Strategies: []string{"OptChain"},
		Shards:     []int{2},
		Rates:      []float64{800},
		Workloads:  []string{"hotspot"},
		Streaming:  true,
	}
	// Begin/Row via Report again: End re-writes, so decode the last record.
	if err := r.Report(context.Background(), streamed, rep); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(sb.String()))
	var b experiment.Baseline
	for dec.More() {
		if err := dec.Decode(&b); err != nil {
			t.Fatal(err)
		}
	}
	if b.Schema != experiment.BaselineSchema || b.Reporter != experiment.BaselineReporterName {
		t.Fatalf("schema %q reporter %q", b.Schema, b.Reporter)
	}
	if b.GeneratedAt != "" {
		t.Fatalf("stamp off but generated_at = %q", b.GeneratedAt)
	}
	if len(b.Sim) != 4 || len(b.Scenarios) != 1 {
		t.Fatalf("sections: sim=%d scenarios=%d", len(b.Sim), len(b.Scenarios))
	}
	for _, cell := range append(append([]experiment.BaselineSim{}, b.Sim...), b.Scenarios...) {
		if cell.CellID == "" {
			t.Fatalf("cell missing id: %+v", cell)
		}
	}
	if b.Scenarios[0].Workload != "hotspot" {
		t.Fatalf("scenario cell: %+v", b.Scenarios[0])
	}
}

func TestSweepRegistry(t *testing.T) {
	if err := experiment.RegisterSweep("", "", nil); err == nil {
		t.Fatal("empty sweep registration accepted")
	}
	if _, err := experiment.BuildSweep("definitely-not-registered", quickParams()); !errors.Is(err, experiment.ErrUnknownSweep) {
		t.Fatalf("err = %v", err)
	}
}

// failingBegin errors in Begin and records whether End still ran — the
// Reporter contract promises End on every failure path.
type failingBegin struct{ ended bool }

func (f *failingBegin) Begin(experiment.Sweep, experiment.Params) error {
	return errors.New("begin failed")
}
func (f *failingBegin) Row(experiment.Row) error { return nil }
func (f *failingBegin) End() error               { f.ended = true; return nil }

func TestReportEndsReporterWhenBeginFails(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	rep := &failingBegin{}
	if err := r.Report(context.Background(), tinySweep(), rep); err == nil {
		t.Fatal("Begin failure not propagated")
	}
	if !rep.ended {
		t.Fatal("End did not run after Begin failed")
	}
}

// TestReporterOptsDeterministicError: rejecting a reporter spec with
// several unknown options must produce the same error text on every call —
// the old code named whichever unknown key map iteration visited first.
func TestReporterOptsDeterministicError(t *testing.T) {
	var want string
	for i := 0; i < 50; i++ {
		_, err := experiment.NewReporter("csv:zeta=1,alpha=2,mid=3", io.Discard)
		if err == nil {
			t.Fatal("unknown reporter options were accepted")
		}
		if !errors.Is(err, experiment.ErrBadReporterOption) {
			t.Fatalf("err = %v, want ErrBadReporterOption", err)
		}
		if i == 0 {
			want = err.Error()
			continue
		}
		if got := err.Error(); got != want {
			t.Fatalf("error text varies across calls:\n%q\n%q", want, got)
		}
	}
	if !strings.Contains(want, `"alpha"`) {
		t.Fatalf("error %q should name the alphabetically first unknown option", want)
	}
}
