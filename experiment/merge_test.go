package experiment_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optchain/experiment"
)

// fillCache runs sweep into dir's row cache and returns the cache path.
func fillCache(t *testing.T, dir string, sweep experiment.Sweep, mutate func(*experiment.Params)) string {
	t.Helper()
	p := cacheParams(dir)
	if mutate != nil {
		mutate(&p)
	}
	r := experiment.NewRunner(p)
	if _, err := r.Collect(context.Background(), sweep); err != nil {
		t.Fatalf("fill cache %s: %v", dir, err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close runner: %v", err)
	}
	return filepath.Join(dir, "rows.jsonl")
}

func mergeCells(strategies []string, shards []int) experiment.Sweep {
	var cells []experiment.Cell
	for i, s := range strategies {
		cells = append(cells, experiment.Cell{Strategy: s, Shards: shards[i], Rate: 800})
	}
	return experiment.Sweep{Name: "merge", Cells: cells}
}

// TestMergeCacheFanOut is the distributed fan-out scenario: two workers
// each fill a cache over an overlapping slice of the grid; the merged file
// must be byte-identical to the cache an uninterrupted single run writes,
// and a resumed run over it must serve every cell from cache.
func TestMergeCacheFanOut(t *testing.T) {
	in1 := fillCache(t, t.TempDir(), mergeCells([]string{"OptChain", "OptChain"}, []int{2, 4}), nil)
	in2 := fillCache(t, t.TempDir(), mergeCells([]string{"OptChain", "OmniLedger"}, []int{4, 2}), nil)
	full := mergeCells([]string{"OptChain", "OptChain", "OmniLedger"}, []int{2, 4, 2})
	ref := fillCache(t, t.TempDir(), full, nil)

	outDir := t.TempDir()
	out := filepath.Join(outDir, "rows.jsonl")
	if err := experiment.MergeCacheFiles(out, in1, in2); err != nil {
		t.Fatalf("MergeCacheFiles: %v", err)
	}
	merged, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read merged: %v", err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatalf("read reference: %v", err)
	}
	if !bytes.Equal(merged, want) {
		t.Fatalf("merged cache differs from an uninterrupted run's:\n--- merged ---\n%s--- reference ---\n%s", merged, want)
	}

	// A run over the merged cache computes nothing.
	warm := experiment.NewRunner(cacheParams(outDir))
	rows, err := warm.Collect(context.Background(), full)
	if err != nil {
		t.Fatalf("run over merged cache: %v", err)
	}
	if err := warm.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, row := range rows {
		if row.WallSeconds != 0 {
			t.Fatalf("cell %s re-executed after merge (wall %v)", row.ID, row.WallSeconds)
		}
	}
}

// TestMergeCacheIdempotent: merging a file with itself (and into itself)
// reproduces it unchanged — duplicates with identical bytes are the normal
// fan-out overlap.
func TestMergeCacheIdempotent(t *testing.T) {
	in := fillCache(t, t.TempDir(), mergeCells([]string{"OptChain"}, []int{2}), nil)
	orig, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := experiment.MergeCacheFiles(in, in, in); err != nil {
		t.Fatalf("self-merge: %v", err)
	}
	after, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, after) {
		t.Fatalf("self-merge changed the file:\n--- before ---\n%s--- after ---\n%s", orig, after)
	}
}

// TestMergeCacheConflicts: diverging duplicate rows, binding mismatches,
// and unreadable inputs all fail with ErrBadCache.
func TestMergeCacheConflicts(t *testing.T) {
	sweep := mergeCells([]string{"OptChain"}, []int{2})
	in := fillCache(t, t.TempDir(), sweep, nil)
	out := filepath.Join(t.TempDir(), "rows.jsonl")

	t.Run("diverging duplicate", func(t *testing.T) {
		data, err := os.ReadFile(in)
		if err != nil {
			t.Fatal(err)
		}
		// Same cell ID, different stored bytes: tamper with a metric digit.
		lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
		row := lines[len(lines)-1]
		tampered := tamperDigit(t, row)
		forged := filepath.Join(t.TempDir(), "rows.jsonl")
		if err := os.WriteFile(forged, []byte(lines[0]+"\n"+tampered+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		err = experiment.MergeCacheFiles(out, in, forged)
		if !errors.Is(err, experiment.ErrBadCache) {
			t.Fatalf("diverging duplicate: err=%v, want ErrBadCache", err)
		}
		if !strings.Contains(err.Error(), "differs between") {
			t.Fatalf("conflict error does not name the divergence: %v", err)
		}
	})

	t.Run("binding mismatch", func(t *testing.T) {
		other := fillCache(t, t.TempDir(), sweep, func(p *experiment.Params) { p.Seed = 99 })
		if err := experiment.MergeCacheFiles(out, in, other); !errors.Is(err, experiment.ErrBadCache) {
			t.Fatalf("seed mismatch: err=%v, want ErrBadCache", err)
		}
	})

	t.Run("missing input", func(t *testing.T) {
		if err := experiment.MergeCacheFiles(out, in, filepath.Join(t.TempDir(), "absent.jsonl")); !errors.Is(err, experiment.ErrBadCache) {
			t.Fatalf("missing input: err=%v, want ErrBadCache", err)
		}
	})

	t.Run("no inputs", func(t *testing.T) {
		if err := experiment.MergeCacheFiles(out); !errors.Is(err, experiment.ErrBadCache) {
			t.Fatalf("no inputs: err=%v, want ErrBadCache", err)
		}
	})

	t.Run("not a cache", func(t *testing.T) {
		junk := filepath.Join(t.TempDir(), "rows.jsonl")
		if err := os.WriteFile(junk, []byte("junk\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := experiment.MergeCacheFiles(out, junk); !errors.Is(err, experiment.ErrBadCache) {
			t.Fatalf("junk input: err=%v, want ErrBadCache", err)
		}
	})
}

// tamperDigit flips one digit inside the row's metric section (after the
// id field, so the cell identity is preserved).
func tamperDigit(t *testing.T, row string) string {
	t.Helper()
	idEnd := strings.Index(row, `"id":"`)
	if idEnd < 0 {
		t.Fatalf("no id in row %q", row)
	}
	idEnd += len(`"id":"`)
	idEnd += strings.Index(row[idEnd:], `"`)
	for i := idEnd; i < len(row); i++ {
		if row[i] >= '1' && row[i] <= '8' {
			return row[:i] + string(row[i]+1) + row[i+1:]
		}
	}
	t.Fatalf("no digit to tamper in %q", row)
	return ""
}
