package experiment

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// SweepBuilder materializes a named sweep definition against the
// parameters it will run under (grids shrink under Params.Quick, strategy
// axes default from Params.Strategies, and so on).
type SweepBuilder func(p Params) (Sweep, error)

var (
	swMu      sync.RWMutex
	swEntries = make(map[string]sweepEntry) // keyed by lower-cased name
)

type sweepEntry struct {
	display     string
	description string
	build       SweepBuilder
}

// RegisterSweep adds a named sweep definition to the open registry, making
// it selectable from cmd/optchain-bench -sweep (and enumerable with
// -list-sweeps). internal/bench registers the paper's grids; externally
// defined sweeps register here exactly like built-ins. The same naming
// rules as RegisterStrategy apply.
func RegisterSweep(name, description string, build SweepBuilder) error {
	name = strings.TrimSpace(name)
	if name == "" {
		return fmt.Errorf("%w: empty sweep name", ErrBadRegistration)
	}
	if build == nil {
		return fmt.Errorf("%w: nil sweep builder for %q", ErrBadRegistration, name)
	}
	key := strings.ToLower(name)
	swMu.Lock()
	defer swMu.Unlock()
	if prev, ok := swEntries[key]; ok {
		return fmt.Errorf("%w: sweep %q already registered", ErrBadRegistration, prev.display)
	}
	swEntries[key] = sweepEntry{display: name, description: description, build: build}
	return nil
}

// MustRegisterSweep registers a built-in; failure is a programming error.
func MustRegisterSweep(name, description string, build SweepBuilder) {
	if err := RegisterSweep(name, description, build); err != nil {
		panic(err) //optchain:fatal duplicate built-in registration is a programmer error caught at init
	}
}

// SweepNames enumerates the registered sweep names, sorted.
func SweepNames() []string {
	swMu.RLock()
	defer swMu.RUnlock()
	out := make([]string, 0, len(swEntries))
	for _, e := range swEntries {
		out = append(out, e.display)
	}
	sort.Strings(out)
	return out
}

// SweepDescription returns the registered one-line description for name
// ("" when unknown).
func SweepDescription(name string) string {
	swMu.RLock()
	defer swMu.RUnlock()
	return swEntries[strings.ToLower(strings.TrimSpace(name))].description
}

// HasSweep reports whether name resolves to a registered sweep.
func HasSweep(name string) bool {
	swMu.RLock()
	defer swMu.RUnlock()
	_, ok := swEntries[strings.ToLower(strings.TrimSpace(name))]
	return ok
}

// BuildSweep materializes the named sweep against p. Unknown names list
// the registry.
func BuildSweep(name string, p Params) (Sweep, error) {
	swMu.RLock()
	e, ok := swEntries[strings.ToLower(strings.TrimSpace(name))]
	swMu.RUnlock()
	if !ok {
		return Sweep{}, fmt.Errorf("%w %q (registered: %s)",
			ErrUnknownSweep, name, strings.Join(SweepNames(), ", "))
	}
	p.fillDefaults()
	return e.build(p)
}
