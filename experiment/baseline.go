package experiment

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// BaselineSchema versions the BENCH_baseline.json layout so downstream
// tooling (CI artifact diffing, PERFORMANCE.md tables) can detect format
// changes. v2 added the per-workload-scenario Scenarios section; v3
// recorded the workload spec on every simulation row; v4 moved the writer
// onto the experiment Reporter path — every row carries its stable cell ID
// and the record names the reporter that produced it; v5 added the
// Parallel scaling section (concurrent placement throughput and decision
// quality per worker count).
const BaselineSchema = "optchain-bench-baseline/v5"

// BaselineReporterName is the provenance string stamped into Baseline
// records produced by this package's baseline reporter.
const BaselineReporterName = "optchain/experiment baseline reporter"

// Baseline is the machine-readable performance record emitted by
// `optchain-bench -baseline-json` (and `make bench-json`). It captures the
// hot-path micro costs (ns/op, allocs/op) and end-to-end simulation
// throughput per strategy × protocol, so every PR's perf trajectory is
// comparable against the committed BENCH_baseline.json.
type Baseline struct {
	Schema string `json:"schema"`
	// Reporter names the sink that produced the record (provenance; v4).
	Reporter    string         `json:"reporter"`
	GeneratedAt string         `json:"generated_at,omitempty"`
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Quick       bool           `json:"quick"`
	Seed        int64          `json:"seed"`
	Micro       []BaselineItem `json:"micro"`
	Sim         []BaselineSim  `json:"sim"`
	// Scenarios is the per-workload-scenario section: one quick streaming
	// simulation per scenario × strategy, so placement quality under skew,
	// bursts, drift, and attack is tracked PR over PR alongside the
	// single-trace numbers.
	Scenarios []BaselineSim `json:"scenarios"`
	// Parallel is the concurrent-placement scaling section (v5): one row
	// per worker count, measuring epoch-replay throughput and the decision
	// quality delta against the serial replay of the same stream. Speedup
	// is relative to the Workers=1 row, so the curve reads directly;
	// GOMAXPROCS above records how many cores the host could actually give
	// the fan-out.
	Parallel []BaselineParallel `json:"parallel"`
	// ParallelNote qualifies the Parallel section when the host cannot
	// demonstrate scaling — set to an explicit warning when GOMAXPROCS is 1
	// (the speedup column then measures fan-out overhead, not parallelism).
	// Empty on multi-core hosts; optional within schema v5.
	ParallelNote string `json:"parallel_note,omitempty"`
}

// BaselineParallel is one worker count of the parallel placement scaling
// curve.
type BaselineParallel struct {
	// Workers is the epoch fan-out width.
	Workers int `json:"workers"`
	// NsPerTx and TxsPerSec are the replay cost per transaction.
	NsPerTx   float64 `json:"ns_per_tx"`
	TxsPerSec float64 `json:"txs_per_sec"`
	// AllocsPerOp is steady-state allocations per transaction (0 expected).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Speedup is TxsPerSec relative to this record's Workers=1 row.
	Speedup float64 `json:"speedup"`
	// CrossFraction is the replay's resulting cross-shard fraction;
	// QualityDelta is CrossFraction minus the serial replay's fraction
	// (positive = worse than serial), the measured decision drift.
	CrossFraction float64 `json:"cross_fraction"`
	QualityDelta  float64 `json:"quality_delta_vs_serial"`
	// CrossChunkFraction is the fraction of input references hidden by
	// concurrent chunks — the drift source QualityDelta quantifies.
	CrossChunkFraction float64 `json:"cross_chunk_fraction"`
}

// BaselineItem is one micro-benchmark: per-unit timing and allocation cost
// of a hot path (unit = one transaction or one event).
type BaselineItem struct {
	Name        string  `json:"name"`
	Unit        string  `json:"unit"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// BaselineSim is one end-to-end simulation cell: virtual steady-state
// throughput plus the wall-clock rate the host sustained while computing
// it.
type BaselineSim struct {
	// CellID is the cell's stable experiment identity (v4) — the same ID
	// the jsonl/csv reporters carry, so baseline rows join against sweep
	// output.
	CellID string `json:"cell_id"`
	// Workload is the workload spec driving the cell: the streamed scenario
	// in the Scenarios section, the materialized default workload in the
	// Sim section.
	Workload      string  `json:"workload"`
	Strategy      string  `json:"strategy"`
	Protocol      string  `json:"protocol"`
	Shards        int     `json:"shards"`
	Rate          float64 `json:"rate"`
	Txs           int     `json:"txs"`
	Committed     int     `json:"committed"`
	SteadyTPS     float64 `json:"steady_tps"`
	CrossFraction float64 `json:"cross_fraction"`
	WallSeconds   float64 `json:"wall_seconds"`
	TxsPerWallSec float64 `json:"txs_per_wall_sec"`
}

// BaselineReporter accumulates sweep rows into a Baseline record and
// writes the indented JSON at End. Streamed rows land in the Scenarios
// section, materialized rows in Sim — mirroring how the two baseline
// sweeps are defined. It is the "baseline" entry of the reporter registry;
// bench composes it with the micro-benchmark section via SetMicro.
type BaselineReporter struct {
	w io.Writer
	b Baseline
	// Stamp controls the generated_at timestamp (on by default; tests turn
	// it off for reproducible bytes).
	Stamp bool
}

// NewBaselineReporter builds a baseline reporter writing to w. When used
// generically (`-reporter baseline` on an arbitrary sweep) the record
// carries empty — never null — sections for whatever the sweep did not
// produce: Micro is filled only by internal/bench via SetMicro.
func NewBaselineReporter(w io.Writer) *BaselineReporter {
	return &BaselineReporter{
		w: w,
		b: Baseline{
			Schema:     BaselineSchema,
			Reporter:   BaselineReporterName,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Micro:      []BaselineItem{},
			Sim:        []BaselineSim{},
			Scenarios:  []BaselineSim{},
			Parallel:   []BaselineParallel{},
		},
		Stamp: true,
	}
}

// newBaselineFromOpts is the registry factory.
func newBaselineFromOpts(w io.Writer, opts map[string]string) (Reporter, error) {
	if err := checkReporterOpts("baseline", opts, "stamp"); err != nil {
		return nil, err
	}
	r := NewBaselineReporter(w)
	if v, ok := opts["stamp"]; ok {
		on, err := onOff("baseline", "stamp", v)
		if err != nil {
			return nil, err
		}
		r.Stamp = on
	}
	return r, nil
}

// SetMicro attaches the micro-benchmark section (collected by
// internal/bench, which owns the testing.Benchmark harness).
func (b *BaselineReporter) SetMicro(items []BaselineItem) { b.b.Micro = items }

// SetParallel attaches the concurrent-placement scaling section (collected
// by internal/bench alongside the micro rows).
func (b *BaselineReporter) SetParallel(items []BaselineParallel) { b.b.Parallel = items }

// SetParallelNote attaches a host qualification to the Parallel section
// (e.g. the single-core warning; see Baseline.ParallelNote).
func (b *BaselineReporter) SetParallelNote(note string) { b.b.ParallelNote = note }

// Baseline returns the record accumulated so far — for callers that want
// the data without writing it (End writes).
func (b *BaselineReporter) Baseline() *Baseline { return &b.b }

// Begin implements Reporter.
func (b *BaselineReporter) Begin(s Sweep, p Params) error {
	b.b.Quick = p.Quick
	b.b.Seed = p.Seed
	return nil
}

// Row implements Reporter: streamed rows accumulate into the Scenarios
// section, materialized rows into Sim.
func (b *BaselineReporter) Row(r Row) error {
	cell := BaselineSim{
		CellID:        r.ID,
		Workload:      r.Workload,
		Strategy:      r.Strategy,
		Protocol:      r.Protocol,
		Shards:        r.Shards,
		Rate:          r.Rate,
		Txs:           r.Total,
		Committed:     r.Committed,
		SteadyTPS:     r.SteadyTPS,
		CrossFraction: r.CrossFraction,
		WallSeconds:   r.WallSeconds,
	}
	if cell.WallSeconds > 0 {
		cell.TxsPerWallSec = float64(r.Committed) / cell.WallSeconds
	}
	if r.Streamed {
		b.b.Scenarios = append(b.b.Scenarios, cell)
	} else {
		b.b.Sim = append(b.b.Sim, cell)
	}
	return nil
}

// End implements Reporter: it stamps and writes the accumulated record.
// With multiple sweeps reported through the same BaselineReporter, call
// End once, after the last (Runner.Report calls End per sweep; the write
// is idempotent-safe because callers driving multiple sweeps use Row/Begin
// directly — see bench.WriteBaselineJSON).
func (b *BaselineReporter) End() error {
	if b.Stamp {
		// Opt-in provenance stamp; excluded from golden comparisons.
		b.b.GeneratedAt = time.Now().UTC().Format(time.RFC3339) //optchain:wallclock
	}
	enc := json.NewEncoder(b.w)
	enc.SetIndent("", "  ")
	return enc.Encode(b.b)
}
