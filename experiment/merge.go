package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// cacheLine is one row of a cache file as read for merging: the parsed cell
// ID plus the exact stored bytes. Merging compares bytes, not parsed
// structs — rows are normalized before persisting (see rowCache.put), so
// two caches that computed the same cell hold identical bytes, and any
// byte-level disagreement means the caches came from diverging code or
// corrupted storage.
type cacheLine struct {
	id   string
	raw  []byte
	path string
	line int
}

// MergeCacheFiles merges several row-cache files (rows.jsonl, schema
// optchain-rowcache/v1) into one at outPath, so sweeps fanned out across
// machines — each filling its own cache directory — can be combined into a
// single resumable cache. The first input's header becomes the output
// header; every other input must agree on the binding fields (seed and
// validators), as the row-cache contract requires. Rows keep first-seen
// order. A cell ID appearing in several inputs is fine when the stored
// bytes are identical (the normal fan-out overlap); the same ID with
// differing bytes fails with ErrBadCache naming the cell and both files,
// because silently picking one side would poison every future resume.
//
// The output is written atomically (temp file + rename), so outPath may be
// one of the inputs.
func MergeCacheFiles(outPath string, inPaths ...string) error {
	if outPath == "" {
		return fmt.Errorf("%w: merge needs an output path", ErrBadCache)
	}
	if len(inPaths) == 0 {
		return fmt.Errorf("%w: merge needs at least one input cache", ErrBadCache)
	}

	var (
		header []byte
		bound  cacheHeader
		order  []string
		byID   = make(map[string]cacheLine)
	)
	for i, path := range inPaths {
		h, rawHeader, lines, err := readCacheLines(path)
		if err != nil {
			return err
		}
		if i == 0 {
			header, bound = rawHeader, h
		} else if h.Seed != bound.Seed || h.Validators != bound.Validators {
			return fmt.Errorf("%w: %s written under seed=%d validators=%d, %s under seed=%d validators=%d",
				ErrBadCache, inPaths[0], bound.Seed, bound.Validators, path, h.Seed, h.Validators)
		}
		for _, l := range lines {
			prev, seen := byID[l.id]
			if !seen {
				byID[l.id] = l
				order = append(order, l.id)
				continue
			}
			if !bytes.Equal(prev.raw, l.raw) {
				return fmt.Errorf("%w: cell %q differs between %s:%d and %s:%d — the caches diverged and cannot be merged",
					ErrBadCache, l.id, prev.path, prev.line, l.path, l.line)
			}
		}
	}

	var buf bytes.Buffer
	buf.Write(header)
	buf.WriteByte('\n')
	for _, id := range order {
		buf.Write(byID[id].raw)
		buf.WriteByte('\n')
	}
	if err := writeCacheAtomic(outPath, buf.Bytes()); err != nil {
		return fmt.Errorf("%w: write %s: %v", ErrBadCache, outPath, err)
	}
	return nil
}

// readCacheLines reads one cache file for merging: the validated header
// (schema-checked, parsed) with its raw bytes, then every row line with its
// parsed cell ID and raw bytes. Validation mirrors loadCacheRows — corrupt
// lines, missing IDs, and within-file duplicates all fail with ErrBadCache.
func readCacheLines(path string) (cacheHeader, []byte, []cacheLine, error) {
	var h cacheHeader
	f, err := os.Open(path)
	if err != nil {
		return h, nil, nil, fmt.Errorf("%w: open %s: %v", ErrBadCache, path, err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return h, nil, nil, fmt.Errorf("%w: read %s header: %v", ErrBadCache, path, err)
		}
		return h, nil, nil, fmt.Errorf("%w: %s is empty (no header)", ErrBadCache, path)
	}
	rawHeader := append([]byte(nil), sc.Bytes()...)
	if err := json.Unmarshal(rawHeader, &h); err != nil || h.Schema == "" {
		return h, nil, nil, fmt.Errorf("%w: %s line 1 is not a cache header (want schema %q)", ErrBadCache, path, CacheSchema)
	}
	if h.Schema != CacheSchema {
		return h, nil, nil, fmt.Errorf("%w: %s has schema %q, want %q", ErrBadCache, path, h.Schema, CacheSchema)
	}

	var lines []cacheLine
	seen := make(map[string]int)
	for line := 2; sc.Scan(); line++ {
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var row Row
		if err := json.Unmarshal(text, &row); err != nil {
			return h, nil, nil, fmt.Errorf("%w: %s line %d corrupt: %v", ErrBadCache, path, line, err)
		}
		if row.ID == "" {
			return h, nil, nil, fmt.Errorf("%w: %s line %d has no cell ID", ErrBadCache, path, line)
		}
		if first, dup := seen[row.ID]; dup {
			return h, nil, nil, fmt.Errorf("%w: %s line %d duplicates cell %q (first at line %d)", ErrBadCache, path, line, row.ID, first)
		}
		seen[row.ID] = line
		lines = append(lines, cacheLine{
			id:   row.ID,
			raw:  append([]byte(nil), text...),
			path: path,
			line: line,
		})
	}
	if err := sc.Err(); err != nil {
		return h, nil, nil, fmt.Errorf("%w: read %s: %v", ErrBadCache, path, err)
	}
	return h, rawHeader, lines, nil
}

// writeCacheAtomic writes data to path via a same-directory temp file and
// rename, so a merge interrupted mid-write never leaves a torn cache.
func writeCacheAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".merge*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
