package experiment_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optchain/experiment"
)

// cacheParams enables the persistent row cache on the quick test params.
// Workers is pinned to 1 so cache appends happen in canonical cell order —
// the setting under which an interrupted-then-resumed cache file must be
// byte-identical to an uninterrupted one.
func cacheParams(dir string) experiment.Params {
	p := quickParams()
	p.Workers = 1
	p.CacheDir = dir
	return p
}

func readCacheFile(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "rows.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// resumeSweep is the grid the resume-identity test interrupts: two fast
// cells, then a cell with a long stream. Cancelling as row two arrives
// always lands while cell three is in flight (its runtime dwarfs the
// consumer's wakeup latency), so the interruption is deterministic — the
// worker cannot race through the whole grid first.
func resumeSweep() experiment.Sweep {
	return experiment.Sweep{
		Name: "resume",
		Cells: []experiment.Cell{
			{Strategy: "OptChain", Shards: 2, Rate: 800},
			{Strategy: "OptChain", Shards: 4, Rate: 800},
			{Strategy: "OmniLedger", Shards: 2, Rate: 800, Txs: 24000},
			{Strategy: "OmniLedger", Shards: 4, Rate: 800},
		},
	}
}

// TestCacheResumeIdentity is the resume property: a streamed grid cancelled
// mid-run and then resumed by a fresh runner over the same cache directory
// produces a cache file byte-identical to an uninterrupted run's, and the
// resumed sweep's rows carry the same cell identities and quality metrics.
func TestCacheResumeIdentity(t *testing.T) {
	// Uninterrupted reference run.
	dirA := t.TempDir()
	ra := experiment.NewRunner(cacheParams(dirA))
	want, err := ra.Collect(context.Background(), resumeSweep())
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Close(); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel the context as soon as two rows stream out.
	// The consumer observes the cancellation at the next frontier cell, so
	// the stream dies mid-grid with a valid cache prefix on disk.
	dirB := t.TempDir()
	rb := experiment.NewRunner(cacheParams(dirB))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamed := 0
	var streamErr error
	for _, err := range rb.Stream(ctx, resumeSweep()) {
		if err != nil {
			streamErr = err
			break
		}
		streamed++
		if streamed == 2 {
			cancel()
		}
	}
	if !errors.Is(streamErr, context.Canceled) {
		t.Fatalf("interrupted run: streamed %d rows, err = %v (want context.Canceled)", streamed, streamErr)
	}
	if streamed == len(resumeSweep().Cells) {
		t.Fatal("interrupted run streamed the whole grid; nothing to resume")
	}
	if err := rb.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume with a fresh runner over the interrupted cache.
	rc := experiment.NewRunner(cacheParams(dirB))
	got, err := rc.Collect(context.Background(), resumeSweep())
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}

	a, b := readCacheFile(t, dirA), readCacheFile(t, dirB)
	if !bytes.Equal(a, b) {
		t.Fatalf("interrupted+resumed cache differs from uninterrupted cache:\n--- uninterrupted ---\n%s--- resumed ---\n%s", a, b)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed rows = %d, want %d", len(got), len(want))
	}
	served := 0
	for i := range got {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.Sweep != w.Sweep || g.Index != w.Index {
			t.Fatalf("row %d identity differs: got %s/%d %q, want %s/%d %q", i, g.Sweep, g.Index, g.ID, w.Sweep, w.Index, w.ID)
		}
		if g.SteadyTPS != w.SteadyTPS || g.CrossFraction != w.CrossFraction || g.Committed != w.Committed {
			t.Fatalf("row %d metrics differ:\nresumed: %+v\nwant:    %+v", i, g, w)
		}
		if g.WallSeconds == 0 {
			served++ // flat data straight from the cache, no host time spent
		}
	}
	if served == 0 {
		t.Fatal("resume executed every cell; nothing was served from the cache")
	}
}

// TestCacheServesSecondRun: a second run over a warm cache serves every
// cell as flat data (zero WallSeconds, identical metrics) and appends
// nothing to the cache file.
func TestCacheServesSecondRun(t *testing.T) {
	dir := t.TempDir()
	cold := experiment.NewRunner(cacheParams(dir))
	want, err := cold.Collect(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
	before := readCacheFile(t, dir)

	warm := experiment.NewRunner(cacheParams(dir))
	got, err := warm.Collect(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("warm rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.SteadyTPS != w.SteadyTPS || g.CrossFraction != w.CrossFraction {
			t.Fatalf("row %d differs from cold run:\nwarm: %+v\ncold: %+v", i, g, w)
		}
		if g.WallSeconds != 0 {
			t.Fatalf("row %d (%s) re-executed on a warm cache (wall %v)", i, g.ID, g.WallSeconds)
		}
	}
	if after := readCacheFile(t, dir); !bytes.Equal(before, after) {
		t.Fatalf("warm run mutated the cache file:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
}

// TestCachePoisoning: a damaged cache must fail the sweep loudly with
// ErrBadCache naming the cell involved — never silently recompute.
func TestCachePoisoning(t *testing.T) {
	// Produce one valid cache file to mutate.
	seedDir := t.TempDir()
	r := experiment.NewRunner(cacheParams(seedDir))
	if _, err := r.Collect(context.Background(), tinySweep()); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	valid := string(readCacheFile(t, seedDir))
	lines := strings.Split(strings.TrimSuffix(valid, "\n"), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("cache file has %d lines, want 5:\n%s", len(lines), valid)
	}
	// The cell ID of the first row — the "after cell" anchor corruption
	// errors must name.
	firstID := lines[1]
	firstID = firstID[strings.Index(firstID, `"id":"`)+len(`"id":"`):]
	firstID = firstID[:strings.Index(firstID, `"`)]
	if firstID == "" {
		t.Fatalf("no cell ID in row line %q", lines[1])
	}

	runOver := func(t *testing.T, content string, p func(experiment.Params) experiment.Params) error {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "rows.jsonl"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		params := cacheParams(dir)
		if p != nil {
			params = p(params)
		}
		run := experiment.NewRunner(params)
		defer run.Close()
		_, err := run.Collect(context.Background(), tinySweep())
		return err
	}

	for name, tc := range map[string]struct {
		content string
		params  func(experiment.Params) experiment.Params
		needle  string
	}{
		"truncated row": {
			content: strings.Join(lines[:2], "\n") + "\n" + lines[2][:len(lines[2])/2] + "\n",
			needle:  firstID, // names the last intact cell
		},
		"corrupt row": {
			content: lines[0] + "\n" + lines[1] + "\n{definitely not json\n",
			needle:  firstID,
		},
		"duplicate row": {
			content: valid + lines[1] + "\n",
			needle:  firstID, // names the duplicated cell
		},
		"row without id": {
			content: lines[0] + "\n{\"kind\":\"sim\"}\n",
			needle:  "no cell ID",
		},
		"bad header": {
			content: "{\"schema\":\"optchain-rowcache/v0\"}\n",
			needle:  "schema",
		},
		"not a header": {
			content: "garbage first line\n",
			needle:  "not a cache header",
		},
		"seed mismatch": {
			content: valid,
			params: func(p experiment.Params) experiment.Params {
				p.Seed = 99
				return p
			},
			needle: "seed",
		},
	} {
		t.Run(name, func(t *testing.T) {
			err := runOver(t, tc.content, tc.params)
			if !errors.Is(err, experiment.ErrBadCache) {
				t.Fatalf("err = %v, want ErrBadCache (a poisoned cache must fail, not recompute)", err)
			}
			if !strings.Contains(err.Error(), tc.needle) {
				t.Fatalf("err %q does not name %q", err, tc.needle)
			}
		})
	}
}

// TestCacheIgnoresSweepIdentity: the same cell cached from one sweep is
// served into another — entries are pure cell data, keyed by cell ID only.
func TestCacheIgnoresSweepIdentity(t *testing.T) {
	dir := t.TempDir()
	first := experiment.NewRunner(cacheParams(dir))
	if _, err := first.Collect(context.Background(), tinySweep()); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	renamed := tinySweep()
	renamed.Name = "renamed"
	second := experiment.NewRunner(cacheParams(dir))
	defer second.Close()
	rows, err := second.Collect(context.Background(), renamed)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if row.Sweep != "renamed" || row.Index != i {
			t.Fatalf("row %d sweep identity not restamped: %+v", i, row)
		}
		if row.WallSeconds != 0 {
			t.Fatalf("row %d (%s) not served from cache across sweeps", i, row.ID)
		}
	}
}
