package experiment_test

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"optchain/experiment"
)

// quickParams keeps every test sweep small and fast.
func quickParams() experiment.Params {
	return experiment.Params{Quick: true, N: 1200, TableN: 3000, Seed: 1, Validators: 4}
}

// tinySweep is a 2x2 sim sweep.
func tinySweep() experiment.Sweep {
	return experiment.Sweep{
		Name:       "tiny",
		Strategies: []string{"OptChain", "OmniLedger"},
		Shards:     []int{2, 4},
		Rates:      []float64{800},
	}
}

func TestStreamCanonicalOrderAndIdentity(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	rows, err := r.Collect(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantOrder := []struct {
		strategy string
		shards   int
	}{
		{"OptChain", 2}, {"OptChain", 4}, {"OmniLedger", 2}, {"OmniLedger", 4},
	}
	seen := map[string]bool{}
	for i, row := range rows {
		if row.Index != i || row.Sweep != "tiny" {
			t.Fatalf("row %d identity: %+v", i, row)
		}
		if row.Strategy != wantOrder[i].strategy || row.Shards != wantOrder[i].shards {
			t.Fatalf("row %d out of canonical order: %+v", i, row)
		}
		if row.ID == "" || seen[row.ID] {
			t.Fatalf("row %d id %q empty or duplicated", i, row.ID)
		}
		seen[row.ID] = true
		if row.Committed == 0 || row.Result == nil {
			t.Fatalf("row %d degenerate: %+v", i, row)
		}
	}
}

// TestDeterministicAcrossScheduling: a parallel sweep and a serial sweep of
// the same cells produce identical rows — row identity and values are
// independent of worker scheduling.
func TestDeterministicAcrossScheduling(t *testing.T) {
	par := experiment.NewRunner(quickParams())
	parRows, err := par.Collect(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	p := quickParams()
	p.Workers = 1
	ser := experiment.NewRunner(p)
	serRows, err := ser.Collect(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	for i := range parRows {
		a, b := parRows[i], serRows[i]
		if a.ID != b.ID || a.SteadyTPS != b.SteadyTPS || a.CrossFraction != b.CrossFraction ||
			a.Committed != b.Committed || a.AvgLatencySec != b.AvgLatencySec {
			t.Fatalf("row %d differs across scheduling:\npar: %+v\nser: %+v", i, a, b)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	for name, s := range map[string]experiment.Sweep{
		"no name":          {Strategies: []string{"OptChain"}, Shards: []int{2}, Rates: []float64{100}},
		"no shards":        {Name: "x", Strategies: []string{"OptChain"}, Rates: []float64{100}},
		"no rates":         {Name: "x", Strategies: []string{"OptChain"}, Shards: []int{2}},
		"unknown strategy": {Name: "x", Strategies: []string{"Nope"}, Shards: []int{2}, Rates: []float64{100}},
		"unknown protocol": {Name: "x", Strategies: []string{"OptChain"}, Protocols: []string{"nope"}, Shards: []int{2}, Rates: []float64{100}},
		"bad workload":     {Name: "x", Strategies: []string{"OptChain"}, Shards: []int{2}, Rates: []float64{100}, Workloads: []string{"nope:1"}},
		"placement vocab":  {Name: "x", Kind: experiment.KindPlacement, Strategies: []string{"OptChain"}, Shards: []int{2}},
		"cells + axis": {Name: "x", Shards: []int{2},
			Cells: []experiment.Cell{{Strategy: "OptChain", Shards: 2, Rate: 100}}},
		"cells + cell defaults": {Name: "x", Streaming: true,
			Cells: []experiment.Cell{{Strategy: "OptChain", Shards: 2, Rate: 100}}},
		"warm on sim cells": {Name: "x", Strategies: []string{"OptChain"},
			Shards: []int{2}, Rates: []float64{100}, Warm: 50},
		"l2s weight on placement cells": {Name: "x", Kind: experiment.KindPlacement,
			Strategies: []string{"T2S"}, Shards: []int{2}, L2SWeights: []float64{0.1}},
		"parallelism on sim cells": {Name: "x", Strategies: []string{"OptChain"},
			Shards: []int{2}, Rates: []float64{100}, Parallelisms: []int{2}},
		"parallelism on metis": {Name: "x", Kind: experiment.KindPlacement,
			Strategies: []string{"Metis"}, Shards: []int{2}, Parallelisms: []int{2}},
		"parallelism + warm": {Name: "x", Kind: experiment.KindPlacement,
			Strategies: []string{"T2S"}, Shards: []int{2}, Warm: 50, Parallelisms: []int{2}},
		"negative parallelism": {Name: "x", Kind: experiment.KindPlacement,
			Strategies: []string{"T2S"}, Shards: []int{2}, Parallelisms: []int{-1}},
	} {
		if _, err := r.Collect(context.Background(), s); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestStreamCancellationMidSweep: cancelling the context mid-sweep stops
// promptly, leaks no goroutines, and the rows delivered before the cancel
// are flushed through the reporter (partial output remains valid).
func TestStreamCancellationMidSweep(t *testing.T) {
	before := runtime.NumGoroutine()
	p := quickParams()
	p.N = 4000
	p.Workers = 2
	r := experiment.NewRunner(p)
	// Enough cells that the sweep cannot finish before the cancel.
	s := experiment.Sweep{
		Name:       "cancel",
		Strategies: []string{"OptChain", "OmniLedger", "Greedy", "T2S"},
		Shards:     []int{2, 3, 4, 5},
		Rates:      []float64{700, 900},
		Uncached:   true,
	}
	ctx, cancel := context.WithCancel(context.Background())
	var rows []experiment.Row
	var sawErr error
	for row, err := range r.Stream(ctx, s) {
		if err != nil {
			sawErr = err
			break
		}
		rows = append(rows, row)
		if len(rows) == 2 {
			cancel()
		}
	}
	cancel()
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("err = %v (rows %d)", sawErr, len(rows))
	}
	if len(rows) < 2 || len(rows) >= 32 {
		t.Fatalf("rows before cancel = %d", len(rows))
	}
	// The iterator waits for in-flight workers before returning, so the
	// goroutine count settles back to the baseline (+1 slack for unrelated
	// runtime goroutines; a worker-pool leak would add Workers=2 or more).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+1 {
		// Dump every goroutine's stack so a leak names the stuck worker
		// instead of just counting it.
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("goroutines leaked: %d -> %d\n%s", before, g, buf)
	}
}

// TestStreamBreakStopsRemainingCells: breaking out of the row iteration
// must cancel the rest of the sweep — not silently execute every
// remaining cell while the iterator's cleanup waits for workers. We
// observe it through the cell cache: after an early break, a second pass
// over the same sweep must re-execute most cells. (The worker can race a
// few tiny cells ahead of the consumer's break — especially at
// GOMAXPROCS=1 — so the bound is a majority, not an exact count; without
// the cancel-before-wait ordering every cell completes.)
func TestStreamBreakStopsRemainingCells(t *testing.T) {
	p := quickParams()
	p.Workers = 1
	p.N = 4000 // heavy enough that the break lands within a cell or two
	r := experiment.NewRunner(p)
	s := experiment.Sweep{
		Name:       "break",
		Strategies: []string{"OptChain", "OmniLedger"},
		Shards:     []int{2, 3, 4, 5},
		Rates:      []float64{700, 900},
	}
	for _, err := range r.Stream(context.Background(), s) {
		if err != nil {
			t.Fatal(err)
		}
		break // consumer walks away after the first row
	}
	rows, err := r.Collect(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, row := range rows {
		if row.WallSeconds == 0 {
			cached++
		}
	}
	if cached > len(rows)/2 {
		t.Fatalf("%d of %d cells executed despite the early break", cached, len(rows))
	}
}

// TestReportFlushesPartialRowsOnCancel: Report must End (flush) the
// reporter even when the sweep is cancelled, so the JSONL file holds the
// completed rows.
func TestReportFlushesPartialRowsOnCancel(t *testing.T) {
	p := quickParams()
	p.N = 4000
	p.Workers = 1
	r := experiment.NewRunner(p)
	s := experiment.Sweep{
		Name:       "cancel-flush",
		Strategies: []string{"OptChain", "OmniLedger", "Greedy", "T2S"},
		Shards:     []int{2, 3, 4},
		Rates:      []float64{700},
		Uncached:   true,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sb strings.Builder
	rep, err := experiment.NewReporter("jsonl", &sb)
	if err != nil {
		t.Fatal(err)
	}
	counting := &cancelAfter{Reporter: rep, n: 2, cancel: cancel}
	err = r.Report(ctx, s, counting)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Report err = %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 2 || len(lines) >= 12 {
		t.Fatalf("flushed %d rows, want the pre-cancel partial set:\n%s", len(lines), sb.String())
	}
	for i, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.Contains(l, `"id":"sim:`) {
			t.Fatalf("line %d is not a valid row: %q", i, l)
		}
	}
}

// cancelAfter cancels the sweep context after n rows have reached the
// reporter.
type cancelAfter struct {
	experiment.Reporter
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfter) Row(r experiment.Row) error {
	if err := c.Reporter.Row(r); err != nil {
		return err
	}
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
	return nil
}

// TestStreamingCellsDoNotLeakSources: a streamed replay cell holds a trace
// file open; cancellation mid-sweep must release it (close happens on the
// cell's exit path). We can't portably count FDs, so this exercises the
// path and relies on the deferred Close — a panic or deadlock would fail.
func TestStreamingSweepRuns(t *testing.T) {
	p := quickParams()
	r := experiment.NewRunner(p)
	s := experiment.Sweep{
		Name:       "streamed",
		Strategies: []string{"OptChain"},
		Shards:     []int{2},
		Rates:      []float64{800},
		Workloads:  []string{"hotspot:exp=1.3"},
		Streaming:  true,
	}
	rows, err := r.Collect(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0].Streamed || rows[0].Workload != "hotspot:exp=1.3" {
		t.Fatalf("row: %+v", rows[0])
	}
	if !strings.Contains(rows[0].ID, "/streamed") {
		t.Fatalf("streamed cell id: %q", rows[0].ID)
	}
}

func TestPlacementSweep(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	s := experiment.Sweep{
		Name:       "tables",
		Kind:       experiment.KindPlacement,
		Strategies: []string{"Metis", "Greedy", "OmniLedger", "T2S"},
		Shards:     []int{4},
	}
	rows, err := r.Collect(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Kind != experiment.KindPlacement {
			t.Fatalf("kind = %q", row.Kind)
		}
		if row.CrossFraction <= 0 || row.CrossFraction > 1 {
			t.Fatalf("%s cross fraction = %v", row.Strategy, row.CrossFraction)
		}
		if row.Protocol != "" || row.Rate != 0 {
			t.Fatalf("placement row carries sim fields: %+v", row)
		}
	}
	// OmniLedger's hash placement must be (much) worse than T2S lineage
	// placement — sanity that the right strategies ran.
	var t2s, random float64
	for _, row := range rows {
		switch row.Strategy {
		case "T2S":
			t2s = row.CrossFraction
		case "OmniLedger":
			random = row.CrossFraction
		}
	}
	if t2s >= random {
		t.Fatalf("T2S %v not better than random %v", t2s, random)
	}
	// A warm start covering the whole stream has nothing to measure and
	// must fail rather than report a misleading 0% cross fraction.
	_, err = r.Cell(context.Background(), experiment.Cell{
		Kind: experiment.KindPlacement, Strategy: "T2S", Shards: 4, Warm: 1 << 30,
	})
	if !errors.Is(err, experiment.ErrBadSweep) {
		t.Fatalf("whole-stream warm start: err = %v", err)
	}
}

// TestParallelPlacementSweep: the Parallelisms axis replays placement cells
// through parallel epochs — worker count 1 reproduces the serial replay
// bit-identically, larger counts report their measured drift source.
func TestParallelPlacementSweep(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	s := experiment.Sweep{
		Name:         "parquality",
		Kind:         experiment.KindPlacement,
		Strategies:   []string{"T2S", "Greedy"},
		Shards:       []int{4},
		Parallelisms: []int{0, 1, 4},
	}
	rows, err := r.Collect(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]experiment.Row{}
	for _, row := range rows {
		byKey[row.Strategy+"/"+strconv.Itoa(row.Parallelism)] = row
		if row.Parallelism > 0 && !strings.Contains(row.ID, "/par") {
			t.Fatalf("parallel row id %q lacks /par", row.ID)
		}
		if row.Parallelism <= 1 && row.CrossChunkFraction != 0 {
			t.Fatalf("row %s reports cross-chunk drift without concurrency: %+v", row.ID, row)
		}
	}
	for _, strat := range []string{"T2S", "Greedy"} {
		serial, one, four := byKey[strat+"/0"], byKey[strat+"/1"], byKey[strat+"/4"]
		if serial.Cross == 0 {
			t.Fatalf("%s serial row degenerate: %+v", strat, serial)
		}
		// One worker = empty cross-chunk window = the serial decisions.
		if one.Cross != serial.Cross || one.CrossFraction != serial.CrossFraction {
			t.Fatalf("%s parallelism 1 diverges from serial: %+v vs %+v", strat, one, serial)
		}
		if four.CrossChunkFraction <= 0 || four.CrossChunkFraction >= 1 {
			t.Fatalf("%s parallelism 4 cross-chunk fraction = %v", strat, four.CrossChunkFraction)
		}
		drift := four.CrossFraction - serial.CrossFraction
		if drift < 0 {
			drift = -drift
		}
		if bound := 2*four.CrossChunkFraction + 0.02; drift > bound {
			t.Fatalf("%s parallel drift %v exceeds bound %v (serial %v, parallel %v)",
				strat, drift, bound, serial.CrossFraction, four.CrossFraction)
		}
	}
}

// TestExpandDoesNotMutateCallerCells: running an Uncached sweep over an
// explicit cell list must not write the sticky flags back into the
// caller's slice (a later cached sweep over the same cells would silently
// re-execute everything).
func TestExpandDoesNotMutateCallerCells(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	cells := []experiment.Cell{{Strategy: "OptChain", Shards: 2, Rate: 800}}
	if _, err := r.Collect(context.Background(), experiment.Sweep{Name: "wall", Cells: cells, Uncached: true}); err != nil {
		t.Fatal(err)
	}
	if cells[0].NoCache || cells[0].Kind != "" {
		t.Fatalf("expand mutated the caller's cells: %+v", cells[0])
	}
}

// TestConcurrentSweepsSingleflight: two overlapping sweeps streamed
// concurrently on one runner execute each shared cell once — the second
// consumer blocks on the in-flight execution instead of duplicating it.
func TestConcurrentSweepsSingleflight(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	s := tinySweep()
	type res struct {
		rows []experiment.Row
		err  error
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			rows, err := r.Collect(context.Background(), s)
			results <- res{rows, err}
		}()
	}
	a, b := <-results, <-results
	if a.err != nil || b.err != nil {
		t.Fatal(a.err, b.err)
	}
	// Exactly one of the two observers of each cell paid wall time.
	for i := range a.rows {
		wallA, wallB := a.rows[i].WallSeconds > 0, b.rows[i].WallSeconds > 0
		if wallA && wallB {
			t.Fatalf("cell %s executed twice across concurrent sweeps", a.rows[i].ID)
		}
		if a.rows[i].SteadyTPS != b.rows[i].SteadyTPS {
			t.Fatalf("cell %d diverged across concurrent sweeps", i)
		}
	}
}

func TestCellCacheSharedAcrossSweeps(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	if _, err := r.Collect(context.Background(), tinySweep()); err != nil {
		t.Fatal(err)
	}
	other := tinySweep()
	other.Name = "other"
	rows, err := r.Collect(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.WallSeconds != 0 {
			t.Fatalf("cell re-executed despite cache: %+v", row)
		}
		if row.Sweep != "other" {
			t.Fatalf("cached row kept stale sweep identity: %+v", row)
		}
	}
}

// TestMetisCaseInsensitive: strategy names resolve case-insensitively
// everywhere else, so a "metis" sim cell must get its partition wired
// exactly like "Metis".
func TestMetisCaseInsensitive(t *testing.T) {
	r := experiment.NewRunner(quickParams())
	row, err := r.Cell(context.Background(), experiment.Cell{
		Kind: experiment.KindSim, Strategy: "metis", Shards: 2, Rate: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	if row.Committed == 0 {
		t.Fatalf("degenerate metis row: %+v", row)
	}
}
