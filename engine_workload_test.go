package optchain_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"optchain"
)

func TestWithWorkloadValidation(t *testing.T) {
	if _, err := optchain.New(optchain.WithWorkload("no-such-scenario", nil)); !errors.Is(err, optchain.ErrUnknownWorkload) {
		t.Fatalf("unknown workload error = %v", err)
	}
	if _, err := optchain.New(optchain.WithWorkload("", nil)); !errors.Is(err, optchain.ErrBadOption) {
		t.Fatalf("empty workload error = %v", err)
	}
	if _, err := optchain.New(optchain.WithWorkload("hotspot", map[string]float64{"bogus": 1})); err == nil {
		t.Fatal("unknown knob accepted")
	}
	d, err := optchain.GenerateDataset(optchain.DatasetConfig{N: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := optchain.New(
		optchain.WithDataset(d),
		optchain.WithWorkload("hotspot", nil),
	); !errors.Is(err, optchain.ErrBadOption) {
		t.Fatalf("dataset+workload conflict error = %v", err)
	}
}

func TestWorkloadsRegistered(t *testing.T) {
	names := optchain.Workloads()
	if len(names) < 7 {
		t.Fatalf("Workloads() = %v, want >= 7", names)
	}
	for _, n := range []string{"bitcoin", "hotspot", "burst", "adversarial", "drift", "mix", "replay"} {
		if !optchain.HasWorkload(n) {
			t.Errorf("HasWorkload(%q) = false", n)
		}
	}
	// replay needs a trace-file argument, so it is not standalone.
	for _, n := range optchain.StandaloneWorkloads() {
		if n == "replay" {
			t.Fatal("StandaloneWorkloads includes replay")
		}
	}
}

// TestWithWorkloadSpec: WithWorkload accepts full mix/replay specs
// unchanged, composing scenarios end-to-end through the Engine.
func TestWithWorkloadSpec(t *testing.T) {
	const n = 2000
	eng, err := optchain.New(
		optchain.WithWorkload("mix:bitcoin=0.7,hotspot=0.2,adversarial=0.1", nil),
		optchain.WithShards(8),
		optchain.WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.PlaceWorkload(n)
	if err != nil {
		t.Fatal(err)
	}
	if st.Placed != n {
		t.Fatalf("placed %d of %d", st.Placed, n)
	}
	// A bad component inside the spec fails New eagerly with the registry
	// listing, not at Run.
	_, err = optchain.New(optchain.WithWorkload("mix:bitcoiin=0.7,hotspot=0.3", nil))
	if err == nil || !errors.Is(err, optchain.ErrUnknownWorkload) {
		t.Fatalf("bad component error = %v", err)
	}
	if !strings.Contains(err.Error(), "bitcoiin") || !strings.Contains(err.Error(), "bitcoin") {
		t.Fatalf("error %q does not name the token and the registry", err)
	}
}

// TestPlaceWorkloadStreams: every standalone scenario (replay needs a
// trace-file argument) streams through PlaceBatch on a fresh engine and
// places the full stream.
func TestPlaceWorkloadStreams(t *testing.T) {
	const n = 3000
	for _, name := range optchain.StandaloneWorkloads() {
		eng, err := optchain.New(
			optchain.WithWorkload(name, nil),
			optchain.WithShards(8),
			optchain.WithSeed(3),
		)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st, err := eng.PlaceWorkload(n)
		if err != nil {
			t.Fatalf("%s: PlaceWorkload: %v", name, err)
		}
		if st.Placed != n {
			t.Fatalf("%s: placed %d of %d", name, st.Placed, n)
		}
		var total int64
		for _, c := range st.ShardCounts {
			total += c
		}
		if total != int64(n) {
			t.Fatalf("%s: shard counts sum to %d", name, total)
		}
	}
}

// TestPlaceWorkloadWithoutConfig: PlaceWorkload requires WithWorkload.
func TestPlaceWorkloadWithoutConfig(t *testing.T) {
	eng, err := optchain.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PlaceWorkload(100); !errors.Is(err, optchain.ErrBadOption) {
		t.Fatalf("error = %v, want ErrBadOption", err)
	}
}

// TestRunWorkloadEndToEnd: Engine.Run drives a streaming scenario through
// the full simulation without a dataset.
func TestRunWorkloadEndToEnd(t *testing.T) {
	for _, name := range []string{"hotspot", "adversarial"} {
		eng, err := optchain.New(
			optchain.WithWorkload(name, nil),
			optchain.WithShards(4),
			optchain.WithTxs(1500),
			optchain.WithRate(500),
			optchain.WithValidators(8),
			optchain.WithShardTuning(optchain.ShardConfig{
				BlockTxs:     100,
				MaxBlockWait: 500 * time.Millisecond,
			}),
		)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		if res.Committed != 1500 {
			t.Fatalf("%s: committed %d of %d", name, res.Committed, res.Total)
		}
	}
}

// TestRunWorkloadMetisRejected: the Metis replay strategy needs a
// materialized dataset; streaming scenarios must be rejected clearly.
func TestRunWorkloadMetisRejected(t *testing.T) {
	eng, err := optchain.New(
		optchain.WithWorkload("hotspot", nil),
		optchain.WithStrategy("Metis"),
		optchain.WithTxs(500),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); !errors.Is(err, optchain.ErrBadOption) {
		t.Fatalf("Metis-over-workload error = %v, want ErrBadOption", err)
	}
}

// TestWorkloadAdversarialBeatsRandomBaseline: the adversarial scenario
// drives the cross-shard fraction far above the bitcoin baseline for the
// same strategy — the scenario lab's reason to exist.
func TestWorkloadAdversarialBeatsRandomBaseline(t *testing.T) {
	cross := func(name string) float64 {
		eng, err := optchain.New(
			optchain.WithWorkload(name, nil),
			optchain.WithShards(8),
			optchain.WithSeed(1),
		)
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.PlaceWorkload(4000)
		if err != nil {
			t.Fatal(err)
		}
		return st.CrossFraction
	}
	adv, btc := cross("adversarial"), cross("bitcoin")
	if adv <= btc {
		t.Fatalf("adversarial cross fraction %.3f <= bitcoin %.3f under OptChain", adv, btc)
	}
	if adv < 0.5 {
		t.Fatalf("adversarial cross fraction %.3f, want >= 0.5", adv)
	}
}
