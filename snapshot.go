package optchain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"

	"optchain/internal/placement"
)

// Snapshot errors. Match with errors.Is.
var (
	// ErrBadSnapshot reports a snapshot that is corrupt, truncated, produced
	// by a different format version, or incompatible with the restoring
	// engine's configuration.
	ErrBadSnapshot = errors.New("optchain: invalid or incompatible snapshot")
	// ErrSnapshotUnsupported reports a strategy whose state cannot be
	// exported — it does not implement the snapshot contract (Metis replay,
	// custom registrations without state support).
	ErrSnapshotUnsupported = errors.New("optchain: strategy does not support snapshots")
)

// snapMagic identifies an Engine snapshot stream; snapVersion versions the
// layout that follows it. The whole stream (magic through payload) is
// covered by a trailing CRC-32 so truncation and corruption fail loudly.
const (
	snapMagic   = "OPTCHSNP"
	snapVersion = 1
)

// snapMaxBytes bounds how much ReadSnapshot will buffer — a corrupt length
// field must not translate into an unbounded allocation. 1 GiB of snapshot
// corresponds to hundreds of millions of placed transactions, far beyond a
// single engine's working range.
const snapMaxBytes = 1 << 30

// WriteSnapshot serializes the engine's complete streaming-placement state
// — the strategy's decision state (for OptChain/T2S the slab-backed p'(v)
// index and the shard assignment), the per-transaction output counts, and
// the cross-shard and parallel-epoch counters — as one versioned,
// checksummed binary stream. A restored engine (see ReadSnapshot) makes
// bit-identical decisions on the rest of the stream, so a placement router
// can restart without replaying history.
//
// The engine may have in-flight Place/PlaceBatch callers — the snapshot is
// taken under the engine lock at a batch boundary — but must not be inside
// Run (ErrRunning). Strategies without state export (Metis replay, custom
// registrations not implementing the snapshot contract) fail with
// ErrSnapshotUnsupported.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running {
		return ErrRunning
	}
	if err := e.ensurePlacerLocked(); err != nil {
		return err
	}
	snap, ok := e.placer.(placement.Snapshotter)
	if !ok {
		return fmt.Errorf("%w: %q", ErrSnapshotUnsupported, e.strategy)
	}

	buf := make([]byte, 0, 64+4*len(e.outs))
	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, snapVersion)
	name := strings.ToLower(e.strategy)
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	buf = binary.AppendUvarint(buf, uint64(e.shards))
	buf = binary.AppendUvarint(buf, math.Float64bits(e.alpha))
	buf = binary.AppendUvarint(buf, math.Float64bits(e.l2sWeight))
	if e.exactL2S {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(e.placerN))
	buf = binary.AppendUvarint(buf, uint64(e.placed))
	buf = placement.AppendInt32s(buf, e.outs)
	buf = binary.AppendUvarint(buf, uint64(e.cross.Total))
	buf = binary.AppendUvarint(buf, uint64(e.cross.Cross))
	buf = binary.AppendUvarint(buf, uint64(e.epoch.Placed))
	buf = binary.AppendUvarint(buf, uint64(e.epoch.InputRefs))
	buf = binary.AppendUvarint(buf, uint64(e.epoch.CrossChunkRefs))
	buf = snap.AppendState(buf)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("%w: write: %v", ErrBadSnapshot, err)
	}
	return nil
}

// ReadSnapshot restores the state WriteSnapshot captured into this engine,
// which must be freshly constructed — same strategy, shard count, alpha,
// and L2S weight as the snapshot's producer, with no transactions placed
// yet. After a successful restore the engine continues the stream exactly
// where the snapshot left off: Stats reflects the restored counters and
// subsequent decisions are bit-identical to the uninterrupted engine's.
//
// Any defect — truncation, checksum mismatch, an unknown version, a
// configuration fingerprint that does not match this engine — fails with
// ErrBadSnapshot naming the disagreement; the engine is left unused only on
// fingerprint errors detected before state adoption, and must be discarded
// after a mid-restore failure.
func (e *Engine) ReadSnapshot(r io.Reader) error {
	data, err := io.ReadAll(io.LimitReader(r, snapMaxBytes+1))
	if err != nil {
		return fmt.Errorf("%w: read: %v", ErrBadSnapshot, err)
	}
	if len(data) > snapMaxBytes {
		return fmt.Errorf("%w: exceeds %d bytes", ErrBadSnapshot, snapMaxBytes)
	}
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("%w: not an engine snapshot (bad magic)", ErrBadSnapshot)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return fmt.Errorf("%w: checksum mismatch (corrupt or truncated)", ErrBadSnapshot)
	}

	sr := placement.NewStateReader(body[len(snapMagic):])
	if v := sr.Uvarint(); sr.Err() == nil && v != snapVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrBadSnapshot, v, snapVersion)
	}
	name, err := readStateString(sr, sr.Uvarint())
	if err != nil {
		return err
	}
	shards := sr.Uvarint()
	alphaBits := sr.Uvarint()
	weightBits := sr.Uvarint()
	exact := sr.Byte()
	capN := sr.Uvarint()
	placed := sr.Uvarint()
	outs := sr.Int32s()
	crossTotal := sr.Uvarint()
	crossCross := sr.Uvarint()
	epPlaced := sr.Uvarint()
	epInputs := sr.Uvarint()
	epCross := sr.Uvarint()
	if err := sr.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running {
		return ErrRunning
	}
	if e.placer != nil || e.placed != 0 {
		return fmt.Errorf("%w: restore requires a fresh engine (this one has %d placements)", ErrBadSnapshot, e.placed)
	}
	switch {
	case name != strings.ToLower(e.strategy):
		return fmt.Errorf("%w: snapshot strategy %q, engine %q", ErrBadSnapshot, name, e.strategy)
	case int(shards) != e.shards:
		return fmt.Errorf("%w: snapshot has %d shards, engine %d", ErrBadSnapshot, shards, e.shards)
	case alphaBits != math.Float64bits(e.alpha):
		return fmt.Errorf("%w: snapshot alpha %v, engine %v", ErrBadSnapshot, math.Float64frombits(alphaBits), e.alpha)
	case weightBits != math.Float64bits(e.l2sWeight):
		return fmt.Errorf("%w: snapshot L2S weight %v, engine %v", ErrBadSnapshot, math.Float64frombits(weightBits), e.l2sWeight)
	case (exact == 1) != e.exactL2S:
		return fmt.Errorf("%w: snapshot exactL2S=%v, engine %v", ErrBadSnapshot, exact == 1, e.exactL2S)
	case uint64(len(outs)) != placed:
		return fmt.Errorf("%w: %d output counts for %d placed transactions", ErrBadSnapshot, len(outs), placed)
	case crossCross > crossTotal:
		return fmt.Errorf("%w: cross count %d exceeds total %d", ErrBadSnapshot, crossCross, crossTotal)
	}
	if e.dataset != nil {
		if n := e.dataset.Len(); uint64(n) != capN {
			return fmt.Errorf("%w: snapshot capacity hint %d, engine dataset length %d", ErrBadSnapshot, capN, n)
		}
	} else {
		// The capacity hint sizes per-shard budgets (T2S/Greedy); rebuild
		// the placer with the producer's value so the bounds agree.
		e.streamCap = int(capN)
	}
	if err := e.ensurePlacerLocked(); err != nil {
		return err
	}
	snap, ok := e.placer.(placement.Snapshotter)
	if !ok {
		return fmt.Errorf("%w: %q", ErrSnapshotUnsupported, e.strategy)
	}
	if err := snap.RestoreState(sr); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if sr.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after strategy state", ErrBadSnapshot, sr.Len())
	}
	if got := e.placer.Assignment().Len(); uint64(got) != placed {
		return fmt.Errorf("%w: strategy state has %d placements, header says %d", ErrBadSnapshot, got, placed)
	}
	e.placed = int(placed)
	e.outs = outs
	e.cross = placement.CrossCounter{Total: int64(crossTotal), Cross: int64(crossCross)}
	e.epoch = placement.EpochStats{Placed: int64(epPlaced), InputRefs: int64(epInputs), CrossChunkRefs: int64(epCross)}
	e.fan = nil
	e.refreshStreamSnapshotLocked()
	return nil
}

// readStateString consumes n raw bytes from the reader as a string.
func readStateString(sr *placement.StateReader, n uint64) (string, error) {
	if n > uint64(sr.Len()) {
		return "", fmt.Errorf("%w: truncated strategy name", ErrBadSnapshot)
	}
	b := sr.Bytes(int(n))
	if err := sr.Err(); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return string(b), nil
}
