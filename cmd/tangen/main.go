// Command tangen generates a synthetic Bitcoin-like transaction dataset
// (calibrated to the TaN-network statistics of the paper's Fig. 2) and
// writes it in the binary stream format understood by the rest of the
// toolchain.
//
// Usage:
//
//	tangen -n 1000000 -seed 7 -o txs.tan
package main

import (
	"flag"
	"fmt"
	"os"

	"optchain"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n         = flag.Int("n", 100_000, "number of transactions")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("o", "", "output file (default stdout)")
		comms     = flag.Int("communities", 64, "active wallet communities")
		intra     = flag.Float64("intra", 1.0, "probability an input is drawn from the owner community")
		hubEvery  = flag.Int("hub-every", 250, "hub (batch payer) cadence in transactions")
		hubFanout = flag.Int("hub-fanout", 60, "hub transaction output bound")
	)
	flag.Parse()

	cfg := optchain.DatasetDefaults()
	cfg.N = *n
	cfg.Seed = *seed
	cfg.Communities = *comms
	cfg.IntraProb = *intra
	cfg.HubEvery = *hubEvery
	cfg.HubFanout = *hubFanout

	d, err := optchain.GenerateDataset(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tangen: %v\n", err)
		return 1
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tangen: %v\n", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tangen: close: %v\n", err)
			}
		}()
		w = f
	}
	if err := d.Encode(w); err != nil {
		fmt.Fprintf(os.Stderr, "tangen: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %d transactions\n", d.Len())
	return 0
}
