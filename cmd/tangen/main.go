// Command tangen produces transaction datasets in the binary stream format
// understood by the rest of the toolchain (.tan). Three sources:
//
//   - the calibrated Bitcoin-like generator (default; TaN-network
//     statistics of the paper's Fig. 2),
//   - any registered workload scenario via -workload (hotspot, burst,
//     adversarial, drift, mix compositions, ... — see -list), with knobs
//     passed inline,
//   - a real Bitcoin trace excerpt via -from-csv / -from-json: txid-keyed
//     extracts are rewritten to positional references and validated, so
//     published trace excerpts feed `replay:` directly.
//
// Usage:
//
//	tangen -n 1000000 -seed 7 -o txs.tan
//	tangen -workload "hotspot:exp=1.5" -n 200000 -o hot.tan
//	tangen -workload adversarial -shards 16 -n 100000 -o adv.tan
//	tangen -workload "mix:bitcoin=0.7,hotspot=0.3" -n 500000 -o mixed.tan
//	tangen -from-csv excerpt.csv -skip-foreign -o real.tan
//	tangen -from-json excerpt.json -o real.tan
//	tangen -list
//
// The full spec grammar (mix composition, replay, knobs per scenario) and
// the real-trace ingestion pipeline (excerpt formats, foreign-input
// handling, end-to-end example) are documented in SCENARIOS.md.
//
// -from-csv expects `txid,inputs,outputs` records ('|'-separated
// txid:vout outpoints and output values; header optional); -from-json an
// array or JSONL stream of {"txid","inputs","outputs"} objects. Inputs
// referencing transactions outside the excerpt fail by default, naming the
// txid; -skip-foreign drops them instead (the spend is treated as
// externally funded), keeping the excerpt's internal lineage intact.
//
// The dedicated -communities/-intra/-hub-every/-hub-fanout flags apply to
// the default Bitcoin generator only; scenario generators take their knobs
// through the -workload spec. Feedback-aware scenarios (adversarial)
// materialize against their hash-placement fallback — the assignment
// OmniLedger would produce for -shards shards.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"optchain"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n           = flag.Int("n", 100_000, "number of transactions")
		seed        = flag.Int64("seed", 1, "random seed")
		out         = flag.String("o", "", "output file (default stdout)")
		wl          = flag.String("workload", "", "workload scenario name[:knob=value,...] (default: calibrated bitcoin generator)")
		fromCSV     = flag.String("from-csv", "", "convert a txid-keyed CSV trace excerpt to .tan instead of generating")
		fromJSON    = flag.String("from-json", "", "convert a JSON/JSONL trace excerpt to .tan instead of generating")
		skipForeign = flag.Bool("skip-foreign", false, "drop inputs referencing transactions outside the excerpt (default: error naming the txid)")
		shards      = flag.Int("shards", 16, "shard-count hint for feedback-aware workloads")
		comms       = flag.Int("communities", 64, "active wallet communities (bitcoin generator)")
		intra       = flag.Float64("intra", 1.0, "probability an input is drawn from the owner community (bitcoin generator)")
		hubEvery    = flag.Int("hub-every", 250, "hub (batch payer) cadence in transactions (bitcoin generator)")
		hubFanout   = flag.Int("hub-fanout", 60, "hub transaction output bound (bitcoin generator)")
		list        = flag.Bool("list", false, "list registered workload scenarios, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("workloads: %s\n", strings.Join(optchain.Workloads(), " "))
		return 0
	}
	if *fromCSV != "" && *fromJSON != "" {
		fmt.Fprintln(os.Stderr, "tangen: -from-csv and -from-json are mutually exclusive")
		return 2
	}
	if (*fromCSV != "" || *fromJSON != "") && *wl != "" {
		fmt.Fprintln(os.Stderr, "tangen: -workload does not combine with a trace conversion")
		return 2
	}
	if *skipForeign && *fromCSV == "" && *fromJSON == "" {
		fmt.Fprintln(os.Stderr, "tangen: -skip-foreign requires -from-csv or -from-json")
		return 2
	}
	if *fromCSV != "" || *fromJSON != "" {
		// Generator flags are silently inert in conversion mode; fail
		// loudly instead (the excerpt alone defines the stream).
		inert := ""
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "n", "seed", "shards", "communities", "intra", "hub-every", "hub-fanout":
				inert = f.Name
			}
		})
		if inert != "" {
			fmt.Fprintf(os.Stderr, "tangen: -%s does not apply to a trace conversion (the excerpt defines the stream)\n", inert)
			return 2
		}
	}

	var d *optchain.Dataset
	var err error
	switch {
	case *fromCSV != "" || *fromJSON != "":
		d, err = convertTrace(*fromCSV, *fromJSON, *skipForeign)
	case *wl != "":
		// The full spec passes through unchanged, so mix compositions and
		// replay arguments materialize exactly as they would stream.
		d, err = optchain.MaterializeWorkload(*wl, optchain.WorkloadParams{
			N:      *n,
			Seed:   *seed,
			Shards: *shards,
		})
	default:
		cfg := optchain.DatasetDefaults()
		cfg.N = *n
		cfg.Seed = *seed
		cfg.Communities = *comms
		cfg.IntraProb = *intra
		cfg.HubEvery = *hubEvery
		cfg.HubFanout = *hubFanout
		d, err = optchain.GenerateDataset(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tangen: %v\n", err)
		return 1
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tangen: %v\n", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tangen: close: %v\n", err)
			}
		}()
		w = f
	}
	if err := d.Encode(w); err != nil {
		fmt.Fprintf(os.Stderr, "tangen: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %d transactions\n", d.Len())
	return 0
}

// convertTrace converts one real-trace excerpt file (CSV or JSON).
func convertTrace(csvPath, jsonPath string, skipForeign bool) (*optchain.Dataset, error) {
	path := csvPath
	if path == "" {
		path = jsonPath
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cfg := optchain.TraceConvertConfig{SkipForeign: skipForeign}
	var d *optchain.Dataset
	var foreign int64
	if csvPath != "" {
		d, foreign, err = optchain.ConvertTraceCSV(f, cfg)
	} else {
		d, foreign, err = optchain.ConvertTraceJSON(f, cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if foreign > 0 {
		fmt.Fprintf(os.Stderr, "dropped %d foreign input(s) referencing transactions outside the excerpt\n", foreign)
	}
	return d, nil
}
