// Command tangen generates a synthetic transaction dataset and writes it in
// the binary stream format understood by the rest of the toolchain. The
// default is the calibrated Bitcoin-like generator (TaN-network statistics
// of the paper's Fig. 2); -workload materializes any registered scenario
// instead (hotspot, burst, adversarial, drift, ... — see -list), with knobs
// passed inline.
//
// Usage:
//
//	tangen -n 1000000 -seed 7 -o txs.tan
//	tangen -workload "hotspot:exp=1.5" -n 200000 -o hot.tan
//	tangen -workload adversarial -shards 16 -n 100000 -o adv.tan
//	tangen -workload "mix:bitcoin=0.7,hotspot=0.3" -n 500000 -o mixed.tan
//	tangen -list
//
// The full spec grammar (mix composition, replay, knobs per scenario) is
// documented in SCENARIOS.md.
//
// The dedicated -communities/-intra/-hub-every/-hub-fanout flags apply to
// the default Bitcoin generator only; scenario generators take their knobs
// through the -workload spec. Feedback-aware scenarios (adversarial)
// materialize against their hash-placement fallback — the assignment
// OmniLedger would produce for -shards shards.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"optchain"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n         = flag.Int("n", 100_000, "number of transactions")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("o", "", "output file (default stdout)")
		wl        = flag.String("workload", "", "workload scenario name[:knob=value,...] (default: calibrated bitcoin generator)")
		shards    = flag.Int("shards", 16, "shard-count hint for feedback-aware workloads")
		comms     = flag.Int("communities", 64, "active wallet communities (bitcoin generator)")
		intra     = flag.Float64("intra", 1.0, "probability an input is drawn from the owner community (bitcoin generator)")
		hubEvery  = flag.Int("hub-every", 250, "hub (batch payer) cadence in transactions (bitcoin generator)")
		hubFanout = flag.Int("hub-fanout", 60, "hub transaction output bound (bitcoin generator)")
		list      = flag.Bool("list", false, "list registered workload scenarios, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("workloads: %s\n", strings.Join(optchain.Workloads(), " "))
		return 0
	}

	var d *optchain.Dataset
	var err error
	if *wl != "" {
		// The full spec passes through unchanged, so mix compositions and
		// replay arguments materialize exactly as they would stream.
		d, err = optchain.MaterializeWorkload(*wl, optchain.WorkloadParams{
			N:      *n,
			Seed:   *seed,
			Shards: *shards,
		})
	} else {
		cfg := optchain.DatasetDefaults()
		cfg.N = *n
		cfg.Seed = *seed
		cfg.Communities = *comms
		cfg.IntraProb = *intra
		cfg.HubEvery = *hubEvery
		cfg.HubFanout = *hubFanout
		d, err = optchain.GenerateDataset(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tangen: %v\n", err)
		return 1
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tangen: %v\n", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tangen: close: %v\n", err)
			}
		}()
		w = f
	}
	if err := d.Encode(w); err != nil {
		fmt.Fprintf(os.Stderr, "tangen: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %d transactions\n", d.Len())
	return 0
}
