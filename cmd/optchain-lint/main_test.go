package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optchain/internal/analyze"
)

// TestJSONByteStable: the -json document must be byte-identical across runs
// on an unchanged tree — CI archives it and diffs against the previous
// artifact, so any nondeterminism (map order, absolute paths, timestamps)
// would show up as spurious churn.
func TestJSONByteStable(t *testing.T) {
	if testing.Short() {
		t.Skip("package load in -short mode")
	}
	render := func() []byte {
		var out, errBuf bytes.Buffer
		code := run(&out, &errBuf, []string{"-json", "../../internal/des"})
		if code == 2 {
			t.Fatalf("lint errored: %s", errBuf.String())
		}
		return out.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("two -json runs differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
	var rep jsonReport
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, a)
	}
	if rep.Schema != "optchain-lint/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Findings == nil {
		t.Fatal("findings must be [] even when clean, never null")
	}
}

// TestWriteJSONPaths: finding paths are repo-relative with forward slashes,
// so the same tree produces the same report on any host or OS.
func TestWriteJSONPaths(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	diags := []analyze.Diagnostic{
		{
			Analyzer: "spawncheck",
			Pos: token.Position{
				Filename: filepath.Join(cwd, "sub", "dir", "f.go"),
				Line:     7,
				Column:   3,
			},
			Message: "spawns an unjoined goroutine",
		},
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %+v", rep.Findings)
	}
	f := rep.Findings[0]
	if f.File != "sub/dir/f.go" {
		t.Fatalf("file = %q, want repo-relative slash path", f.File)
	}
	if f.Analyzer != "spawncheck" || f.Line != 7 || f.Col != 3 {
		t.Fatalf("finding = %+v", f)
	}
	if strings.Contains(buf.String(), cwd) {
		t.Fatalf("report leaks the absolute tree location:\n%s", buf.String())
	}
}
