// Command optchain-lint runs the repository's custom static-analysis suite
// (internal/analyze): determinism, hotpath, lockcheck, and apierrors. It
// exits non-zero when any contract is violated, so `make lint` and CI can
// gate on it.
//
// Usage:
//
//	optchain-lint [packages]
//
// Patterns default to ./... and are resolved by `go list` relative to the
// current directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"optchain/internal/analyze"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: optchain-lint [packages]\n\nAnalyzers:\n")
		for _, a := range analyze.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analyze.Check(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optchain-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "optchain-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
