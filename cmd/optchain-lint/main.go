// Command optchain-lint runs the repository's custom static-analysis suite
// (internal/analyze): determinism, hotpath, lockcheck, apierrors, and the
// concurrency-contract pack — forkpurity, spawncheck, ctxcheck, atomiccheck.
// It exits non-zero when any contract is violated, so `make lint` and CI can
// gate on it.
//
// Usage:
//
//	optchain-lint [-json] [-out file] [packages]
//
// Patterns default to ./... and are resolved by `go list` relative to the
// current directory.
//
// -json replaces the line-oriented output with one machine-readable
// document (schema optchain-lint/v1): findings sorted by (file, line,
// column, analyzer), file paths repo-relative with forward slashes. The
// bytes are stable across runs on an unchanged tree, so CI can archive and
// diff them. -out writes the report to a file instead of stdout (the
// findings still gate the exit status). Exit codes: 0 clean, 1 findings,
// 2 load/internal error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"optchain/internal/analyze"
)

// jsonReport is the -json document, schema optchain-lint/v1.
type jsonReport struct {
	Schema   string        `json:"schema"`
	Findings []jsonFinding `json:"findings"`
}

// jsonFinding is one diagnostic with a repo-relative slash path, so reports
// diff cleanly across machines and operating systems.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("optchain-lint", flag.ExitOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the optchain-lint/v1 JSON report instead of line output")
	outPath := fs.String("out", "", "write the report to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: optchain-lint [-json] [-out file] [packages]\n\nAnalyzers:\n")
		for _, a := range analyze.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analyze.Check(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "optchain-lint:", err)
		return 2
	}

	w := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "optchain-lint:", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if *asJSON {
		if err := writeJSON(w, diags); err != nil {
			fmt.Fprintln(stderr, "optchain-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "optchain-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// writeJSON renders the diagnostics as the stable v1 document. Check already
// sorts by (file, line, column, analyzer); paths are relativized against the
// working directory and slash-normalized so two runs on the same tree are
// byte-identical regardless of where the tree lives.
func writeJSON(w io.Writer, diags []analyze.Diagnostic) error {
	root, err := os.Getwd()
	if err != nil {
		return err
	}
	rep := jsonReport{Schema: "optchain-lint/v1", Findings: []jsonFinding{}}
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil {
			file = rel
		}
		rep.Findings = append(rep.Findings, jsonFinding{
			Analyzer: d.Analyzer,
			File:     filepath.ToSlash(file),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
