// Command optchain-serve runs the placement engine as an HTTP service: a
// bounded ingest queue coalesces concurrent placement requests into engine
// batches, /metrics exposes Prometheus text, and — with -state — the engine
// snapshots its decision state periodically and restores it on restart, so
// a placement router resumes its stream instead of replaying history.
//
// Usage:
//
//	optchain-serve -addr :8080 -shards 16 -strategy OptChain \
//	    -state /var/lib/optchain/state.bin -snapshot-every 30s
//
// Place transactions by POSTing JSON lines to /v1/place:
//
//	{"id":"tx-9","inputs":[3,7],"parents":["tx-4"],"outputs":2}
//
// Each response line carries the transaction's absolute stream index and
// its shard. A full queue answers 429 with Retry-After; SIGINT/SIGTERM
// drains accepted requests and writes a final snapshot before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"optchain"
	"optchain/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("optchain-serve: %v", err)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		shards      = flag.Int("shards", 16, "shard count")
		strategy    = flag.String("strategy", "OptChain", "placement strategy (OptChain, T2S, Greedy, OmniLedger)")
		alpha       = flag.Float64("alpha", 0, "T2S damping factor (0 = engine default)")
		l2sWeight   = flag.Float64("l2s-weight", 0, "L2S weight in temporal fitness (0 = engine default)")
		parallelism = flag.Int("parallelism", 1, "placement parallelism (epoch-partitioned)")
		batch       = flag.Int("batch", 0, "engine batch size for parallel placement (0 = default)")
		streamCap   = flag.Int("stream-cap", 1_000_000, "stream capacity hint (sizes per-shard budgets)")
		seed        = flag.Int64("seed", 1, "engine seed")
		queue       = flag.Int("queue", serve.DefaultQueueDepth, "ingest queue depth (admission-control bound)")
		maxBatch    = flag.Int("max-batch", serve.DefaultMaxBatch, "max requests coalesced per engine batch")
		retryAfter  = flag.Duration("retry-after", serve.DefaultRetryAfter, "backoff advertised on 429 responses")
		statePath   = flag.String("state", "", "state file: restore on start, snapshot periodically and on shutdown")
		snapEvery   = flag.Duration("snapshot-every", serve.DefaultSnapshotEvery, "periodic snapshot cadence (needs -state)")
	)
	flag.Parse()

	opts := []optchain.Option{
		optchain.WithShards(*shards),
		optchain.WithStrategy(*strategy),
		optchain.WithStreamCapacity(*streamCap),
		optchain.WithSeed(*seed),
	}
	if *alpha > 0 {
		opts = append(opts, optchain.WithAlpha(*alpha))
	}
	if *l2sWeight > 0 {
		opts = append(opts, optchain.WithL2SWeight(*l2sWeight))
	}
	if *parallelism > 1 {
		opts = append(opts, optchain.WithParallelism(*parallelism))
	}
	if *batch > 0 {
		opts = append(opts, optchain.WithBatchSize(*batch))
	}
	eng, err := optchain.New(opts...)
	if err != nil {
		return err
	}

	srv, err := serve.New(serve.Config{
		Engine:        eng,
		QueueDepth:    *queue,
		MaxBatch:      *maxBatch,
		RetryAfter:    *retryAfter,
		StatePath:     *statePath,
		SnapshotEvery: *snapEvery,
	})
	if err != nil {
		return err
	}
	if placed := eng.Stats().Placed; placed > 0 {
		log.Printf("restored %d placements from %s", placed, *statePath)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() {
		errc <- httpSrv.Serve(ln)
	}()
	log.Printf("serving %s placement on http://%s (shards=%d queue=%d max-batch=%d)",
		*strategy, ln.Addr(), *shards, *queue, *maxBatch)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining accepted requests")
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(shutCtx); err != nil && !errors.Is(err, serve.ErrServerClosed) {
		return fmt.Errorf("close: %w", err)
	}
	if *statePath != "" {
		log.Printf("state saved to %s (%d placed)", *statePath, eng.Stats().Placed)
	}
	return nil
}
