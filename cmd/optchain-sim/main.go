// Command optchain-sim runs a single sharded-blockchain simulation and
// prints its metrics: throughput, latency distribution, cross-shard
// fraction, queue behavior.
//
// Usage:
//
//	optchain-sim -shards 16 -rate 4000 -placer OptChain
//	optchain-sim -shards 8 -rate 2000 -placer OmniLedger -protocol rapidchain
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"optchain/internal/dataset"
	"optchain/internal/metis"
	"optchain/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n          = flag.Int("n", 60_000, "number of transactions")
		seed       = flag.Int64("seed", 1, "random seed")
		shards     = flag.Int("shards", 16, "number of shards")
		validators = flag.Int("validators", 400, "validators per shard")
		rate       = flag.Float64("rate", 4000, "offered load, tx/s")
		placer     = flag.String("placer", "OptChain", "OptChain | T2S | OmniLedger | Greedy | Metis")
		protocol   = flag.String("protocol", "omniledger", "omniledger | rapidchain")
		exactL2S   = flag.Bool("exact-l2s", false, "use exact quadrature for the L2S score")
		validate   = flag.Bool("validate-utxo", false, "strict in-order UTXO validation (see DESIGN.md)")
		maxSim     = flag.Duration("max-sim-time", 20*time.Minute, "virtual-time cap")
	)
	flag.Parse()

	cfg := dataset.DefaultConfig()
	cfg.N = *n
	cfg.Seed = *seed
	d, err := dataset.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optchain-sim: %v\n", err)
		return 1
	}

	simCfg := sim.Config{
		Dataset:      d,
		Shards:       *shards,
		Validators:   *validators,
		Rate:         *rate,
		Placer:       sim.PlacerKind(*placer),
		Protocol:     sim.ProtocolKind(*protocol),
		Seed:         *seed,
		ExactL2S:     *exactL2S,
		ValidateUTXO: *validate,
		MaxSimTime:   *maxSim,
	}
	if simCfg.Placer == sim.PlacerMetis {
		g, err := d.BuildGraph()
		if err != nil {
			fmt.Fprintf(os.Stderr, "optchain-sim: %v\n", err)
			return 1
		}
		xadj, adj := g.UndirectedCSR()
		part, err := metis.PartitionKWay(xadj, adj, *shards, &metis.Options{Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "optchain-sim: %v\n", err)
			return 1
		}
		simCfg.MetisPart = part
	}

	start := time.Now()
	res, err := sim.Run(simCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optchain-sim: %v\n", err)
		return 1
	}

	fmt.Printf("placer=%s protocol=%s shards=%d rate=%.0f\n", res.Placer, res.Protocol, res.Shards, res.Rate)
	fmt.Printf("committed           %d / %d\n", res.Committed, res.Total)
	fmt.Printf("makespan            %.1f s (issue window %.1f s)\n", res.MakespanSeconds, res.IssueSeconds)
	fmt.Printf("throughput          %.0f tps total, %.0f tps steady-state\n", res.ThroughputTPS, res.SteadyTPS)
	fmt.Printf("latency             avg %.2f s | P50 %.2f | P99 %.2f | max %.2f\n",
		res.AvgLatency, res.P50, res.P99, res.MaxLatency)
	fmt.Printf("within 10 s         %.1f%%\n", 100*res.Latencies.FractionWithin(10*time.Second))
	fmt.Printf("cross-shard         %.1f%% (%d same / %d cross)\n", 100*res.CrossFraction, res.SameShard, res.CrossShard)
	fmt.Printf("blocks              %d cut, %d items committed, %d deferred, avg consensus %.2f s\n",
		res.BlocksCut, res.ItemsCommitted, res.ItemsDeferred, res.AvgConsensusSecs)
	fmt.Printf("queues              peak max %d\n", res.Queues.PeakMax())
	fmt.Printf("retries/aborts      %d / %d\n", res.Retries, res.Aborts)
	fmt.Printf("wall time           %.1f s\n", time.Since(start).Seconds())
	return 0
}
