// Command optchain-sim runs a single sharded-blockchain simulation and
// prints its metrics: throughput, latency distribution, cross-shard
// fraction, queue behavior. Strategies and protocols are resolved through
// the open registry, so anything added with optchain.RegisterStrategy /
// RegisterProtocol is selectable by name. Ctrl-C cancels a run cleanly.
//
// Usage:
//
//	optchain-sim -shards 16 -rate 4000 -strategy OptChain
//	optchain-sim -shards 8 -rate 2000 -strategy OmniLedger -protocol rapidchain
//	optchain-sim -workload hotspot -txs 50000
//	optchain-sim -workload "burst:boost=12,onmean=600" -strategy OptChain
//	optchain-sim -workload "mix:bitcoin=0.7,hotspot=0.2,adversarial=0.1"
//	optchain-sim -workload "replay:trace.tan,mod=(burst:boost=4)" -txs 100000
//	optchain-sim -shards 16 -rate 6000 -cpuprofile cpu.out -memprofile mem.out
//	optchain-sim -list
//
// -workload selects a workload spec (see -list for the registered scenarios
// and SCENARIOS.md for the full grammar: knobs, mix composition, trace
// replay with arrival modulators) instead of the default calibrated
// Bitcoin-like dataset; scenario runs stream one transaction per issue
// event and never materialize a dataset. The -cpuprofile, -memprofile, and
// -trace flags capture runtime profiles of a run without a rebuild (see
// PERFORMANCE.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"optchain"
	"optchain/internal/profiling"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n          = flag.Int("n", 0, "deprecated alias of -txs")
		txs        = flag.Int("txs", 0, "number of transactions (default 60000)")
		wl         = flag.String("workload", "", "workload spec (name, name:knob=value,..., mix:..., replay:... — see -list and SCENARIOS.md); streams instead of generating a dataset")
		seed       = flag.Int64("seed", 1, "random seed")
		shards     = flag.Int("shards", 16, "number of shards")
		validators = flag.Int("validators", 400, "validators per shard")
		rate       = flag.Float64("rate", 4000, "offered load, tx/s")
		strategy   = flag.String("strategy", "OptChain", "placement strategy (see -list)")
		placer     = flag.String("placer", "", "deprecated alias for -strategy")
		protocol   = flag.String("protocol", "omniledger", "commit protocol (see -list)")
		exactL2S   = flag.Bool("exact-l2s", false, "use exact quadrature for the L2S score")
		validate   = flag.Bool("validate-utxo", false, "strict in-order UTXO validation (see the SimConfig.ValidateUTXO docs)")
		maxSim     = flag.Duration("max-sim-time", 20*time.Minute, "virtual-time cap")
		progress   = flag.Bool("progress", false, "print live progress to stderr")
		list       = flag.Bool("list", false, "list registered strategies and protocols, then exit")
	)
	var prof profiling.Config
	prof.AddFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Printf("strategies: %s\n", strings.Join(optchain.Strategies(), " "))
		fmt.Printf("protocols:  %s\n", strings.Join(optchain.Protocols(), " "))
		fmt.Printf("workloads:  %s\n", strings.Join(optchain.Workloads(), " "))
		return 0
	}
	count := 60_000
	switch {
	case *txs > 0 && *n > 0 && *txs != *n:
		fmt.Fprintf(os.Stderr, "optchain-sim: -n %d conflicts with -txs %d (drop the deprecated -n)\n", *n, *txs)
		return 2
	case *txs > 0:
		count = *txs
	case *n > 0:
		count = *n
	}
	if *placer != "" {
		strategySet := false
		flag.Visit(func(f *flag.Flag) { strategySet = strategySet || f.Name == "strategy" })
		if strategySet && !strings.EqualFold(*placer, *strategy) {
			fmt.Fprintf(os.Stderr, "optchain-sim: -placer %q conflicts with -strategy %q (drop the deprecated -placer)\n",
				*placer, *strategy)
			return 2
		}
		*strategy = *placer
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "optchain-sim: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "optchain-sim: %v\n", err)
		}
	}()

	opts := []optchain.Option{
		optchain.WithTxs(count),
		optchain.WithShards(*shards),
		optchain.WithValidators(*validators),
		optchain.WithRate(*rate),
		optchain.WithStrategy(*strategy),
		optchain.WithProtocol(*protocol),
		optchain.WithSeed(*seed),
		optchain.WithExactL2S(*exactL2S),
		optchain.WithUTXOValidation(*validate),
		optchain.WithMaxSimTime(*maxSim),
	}
	if *wl != "" {
		// The full spec passes through unchanged — composite scenarios
		// (mix components, replay arguments) are parsed by the engine.
		opts = append(opts, optchain.WithWorkload(*wl, nil))
	}
	if *progress {
		opts = append(opts, optchain.WithProgress(func(s optchain.MetricsSnapshot) {
			if s.Done {
				fmt.Fprint(os.Stderr, "\r\033[K")
				return
			}
			fmt.Fprintf(os.Stderr, "\rt=%6.0fs issued %d committed %d/%d queueMax %d",
				s.SimTime.Seconds(), s.Issued, s.Committed, s.Total, s.QueueMax)
		}))
	}
	eng, err := optchain.New(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optchain-sim: %v\n", err)
		return 2
	}

	start := time.Now()
	res, err := eng.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optchain-sim: %v\n", err)
		return 1
	}

	fmt.Printf("strategy=%s protocol=%s shards=%d rate=%.0f\n", res.Placer, res.Protocol, res.Shards, res.Rate)
	fmt.Printf("committed           %d / %d\n", res.Committed, res.Total)
	fmt.Printf("makespan            %.1f s (issue window %.1f s)\n", res.MakespanSeconds, res.IssueSeconds)
	fmt.Printf("throughput          %.0f tps total, %.0f tps steady-state\n", res.ThroughputTPS, res.SteadyTPS)
	fmt.Printf("latency             avg %.2f s | P50 %.2f | P99 %.2f | max %.2f\n",
		res.AvgLatency, res.P50, res.P99, res.MaxLatency)
	fmt.Printf("within 10 s         %.1f%%\n", 100*res.Latencies.FractionWithin(10*time.Second))
	fmt.Printf("cross-shard         %.1f%% (%d same / %d cross)\n", 100*res.CrossFraction, res.SameShard, res.CrossShard)
	fmt.Printf("blocks              %d cut, %d items committed, %d deferred, avg consensus %.2f s\n",
		res.BlocksCut, res.ItemsCommitted, res.ItemsDeferred, res.AvgConsensusSecs)
	fmt.Printf("queues              peak max %d\n", res.Queues.PeakMax())
	fmt.Printf("retries/aborts      %d / %d\n", res.Retries, res.Aborts)
	fmt.Printf("wall time           %.1f s\n", time.Since(start).Seconds())
	return 0
}
