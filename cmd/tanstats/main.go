// Command tanstats prints the TaN-network characterization of a dataset —
// the statistics of the paper's Fig. 2: degree distributions, cumulative
// fractions, average degree over time, and the node census.
//
// Usage:
//
//	tanstats -i txs.tan
//	tanstats -n 200000                  # generate on the fly
//	tanstats -workload hotspot -n 50000 # characterize a scenario stream
//	tanstats -workload "mix:bitcoin=0.8,hotspot=0.2" -n 50000
//
// -workload takes any workload spec (see SCENARIOS.md for the grammar).
package main

import (
	"flag"
	"fmt"
	"os"

	"optchain"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		in     = flag.String("i", "", "input dataset file (omit to generate)")
		n      = flag.Int("n", 200_000, "transactions to generate when -i is not set")
		seed   = flag.Int64("seed", 1, "generation seed")
		wl     = flag.String("workload", "", "workload scenario name[:knob=value,...] to characterize (default: calibrated bitcoin generator)")
		shards = flag.Int("shards", 16, "shard-count hint for feedback-aware workloads")
	)
	flag.Parse()

	var d *optchain.Dataset
	var err error
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tanstats: %v\n", err)
			return 1
		}
		defer f.Close()
		d, err = optchain.LoadDataset(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tanstats: %v\n", err)
			return 1
		}
	case *wl != "":
		d, err = optchain.MaterializeWorkload(*wl, optchain.WorkloadParams{
			N: *n, Seed: *seed, Shards: *shards,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tanstats: %v\n", err)
			return 1
		}
	default:
		cfg := optchain.DatasetDefaults()
		cfg.N = *n
		cfg.Seed = *seed
		d, err = optchain.GenerateDataset(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tanstats: %v\n", err)
			return 1
		}
	}

	g, err := d.BuildGraph()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tanstats: %v\n", err)
		return 1
	}
	c := g.TakeCensus()
	fmt.Printf("nodes       %d\n", c.Nodes)
	fmt.Printf("edges       %d\n", c.Edges)
	fmt.Printf("avg degree  %.3f (paper Bitcoin TaN: 2.3)\n", c.AvgInDeg)
	fmt.Printf("coinbase    %d\n", c.Coinbase)
	fmt.Printf("unspent     %d\n", c.Unspent)
	fmt.Printf("isolated    %d\n", c.Isolated)

	in2, out2 := g.DegreeHistograms()
	inCum := optchain.CumulativeFraction(in2)
	outCum := optchain.CumulativeFraction(out2)
	at := func(cum []float64, d int) float64 {
		if d >= len(cum) {
			return 1
		}
		return cum[d]
	}
	fmt.Printf("P(in<3)     %.3f (paper: 0.931)\n", at(inCum, 2))
	fmt.Printf("P(out<3)    %.3f (paper: 0.863)\n", at(outCum, 2))
	fmt.Printf("P(out<10)   %.3f (paper: 0.976)\n", at(outCum, 9))

	fmt.Println("degree distribution (powers of two):")
	fmt.Printf("  %-8s %-12s %-12s\n", "degree", "in-count", "out-count")
	for deg := 1; deg < len(in2) || deg < len(out2); deg *= 2 {
		ic, oc := int64(0), int64(0)
		if deg < len(in2) {
			ic = in2[deg]
		}
		if deg < len(out2) {
			oc = out2[deg]
		}
		fmt.Printf("  %-8d %-12d %-12d\n", deg, ic, oc)
	}

	fmt.Println("average degree over time (deciles):")
	for i, v := range g.AverageDegreeSeries(10) {
		fmt.Printf("  %3d%%: %.3f\n", (i+1)*10, v)
	}
	return 0
}
