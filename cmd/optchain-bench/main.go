// Command optchain-bench is a thin driver over the optchain/experiment
// sweep layer. It runs either the paper-layout experiment reports
// (-experiment: the tables and figures of the OptChain paper's evaluation,
// ICDCS 2019 §IV-B and §V) or any registered sweep through any registered
// reporter (-sweep/-reporter: results as streamed data rather than
// paper-shaped text).
//
// Usage:
//
//	optchain-bench -experiment all
//	optchain-bench -experiment table1 -table-n 500000
//	optchain-bench -experiment fig3 -n 100000 -validators 400
//	optchain-bench -experiment fig3 -protocol rapidchain
//	optchain-bench -experiment fig4 -strategies OptChain,OmniLedger
//	optchain-bench -experiment fig5 -workload mix:bitcoin=0.7,hotspot=0.3
//	optchain-bench -experiment fig5 -workload "replay:trace.tan,mod=(burst:boost=4)" -stream
//	optchain-bench -experiment scenarios                     # workload lab
//	optchain-bench -experiment scenarios -workloads "hotspot;adversarial"
//	optchain-bench -quick -experiment all       # fast smoke pass
//
//	optchain-bench -list-sweeps
//	optchain-bench -sweep grid -reporter jsonl -out grid.jsonl
//	optchain-bench -sweep peak -reporter csv
//	optchain-bench -sweep smoke -reporter text
//	optchain-bench -quick -sweep grid -stream -workload "mix:burst=0.5,bitcoin=0.5"
//	optchain-bench -sweep grid -reporter jsonl -out grid.jsonl -cache .sweep-cache
//	optchain-bench -diff old.jsonl new.jsonl
//	optchain-bench -diff -allow-missing -tol-tps 0.1 BENCH_baseline.json new.jsonl
//
// -cache DIR persists every completed row as JSONL keyed by its stable
// cell ID; re-running the same sweep (or an interrupted one) serves cached
// rows instead of re-simulating, so a killed grid resumes where it died. A
// corrupt cache or one written under a different seed fails loudly with
// ErrBadCache rather than silently recomputing.
//
// -diff OLD NEW joins two row files on cell ID — jsonl sweep output, a row
// cache, or a BENCH_baseline.json record — classifies each quality metric
// against relative tolerances (-tol-tps, -tol-cross, -tol-crosschunk,
// -tol-nstx), prints the verdict table, and exits non-zero on any
// regression; `make quality-gate` wires this into CI. The `diff` reporter
// (-reporter "diff:old=FILE,tps=0.05") gates a live sweep the same way.
//
// The -strategies, -protocol, -workload, and -workloads flags resolve
// through the open registries, so strategies/protocols/workloads added with
// optchain.RegisterStrategy / RegisterProtocol / RegisterWorkload are
// selectable here too; -sweep and -reporter resolve through
// experiment.RegisterSweep / RegisterReporter the same way. Experiment
// names: fig2 table1 table2 fig3..fig11 scenarios
// ablation-{l2s,alpha,weight,backend}.
//
// -workload selects the stream driving EVERY figure, table, and ablation
// sweep: any workload spec (see SCENARIOS.md for the grammar). By default
// it is materialized at each experiment's stream length; with -stream the
// simulation sweeps pull it one transaction per issue event instead —
// nothing is materialized, so `mix:`/`replay:` arrival modulation (burst,
// drift Gap shaping) bends the figures too. Metis cells still materialize
// (the offline partition needs the full graph) and say so in their rows.
// -workloads (plural) instead picks the scenario SET the `scenarios`
// experiment and the baseline's per-scenario section stream; entries are
// ','-separated, or ';'-separated when a spec itself contains commas
// (separators inside parentheses never split a spec).
//
// -baseline-json FILE measures the hot-path micro-benchmarks and one quick
// simulation per strategy × protocol, and writes the machine-readable
// performance record tracked as BENCH_baseline.json (`make bench-json`),
// schema v4. -cpuprofile/-memprofile/-trace capture runtime profiles of
// any run (see PERFORMANCE.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"optchain"
	"optchain/experiment"
	"optchain/internal/bench"
	"optchain/internal/profiling"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("experiment", "", "paper-layout experiment to run ('all' or a name; default 'all' unless -sweep is given)")
		sweep      = flag.String("sweep", "", "registered sweep to stream through -reporter (see -list-sweeps)")
		reporter   = flag.String("reporter", "", "reporter spec for -sweep: name[:key=value,...] (text, jsonl, csv, baseline, diff; default text)")
		out        = flag.String("out", "", "output file for -sweep (default stdout)")
		cacheDir   = flag.String("cache", "", "row-cache directory for -sweep: completed rows persist keyed by cell ID and re-runs resume instead of re-simulating")
		diffMode   = flag.Bool("diff", false, "compare two row files (OLD NEW as positional args; jsonl sweep output, a row cache, or BENCH_baseline.json) and exit non-zero on quality regression")
		tolTPS     = flag.Float64("tol-tps", 0.05, "-diff relative tolerance on steady_tps (regresses downward)")
		tolCross   = flag.Float64("tol-cross", 0.05, "-diff relative tolerance on cross_fraction (regresses upward)")
		tolChunk   = flag.Float64("tol-crosschunk", 0.05, "-diff relative tolerance on cross_chunk_fraction (regresses upward)")
		tolNsTx    = flag.Float64("tol-nstx", 0, "-diff relative tolerance on wall ns/tx (0 = not compared; host noise)")
		allowMiss  = flag.Bool("allow-missing", false, "-diff: accept cells present in OLD but absent from NEW (gating a subset run against a fuller baseline)")
		listSweeps = flag.Bool("list-sweeps", false, "list registered sweeps and reporters, then exit")
		stream     = flag.Bool("stream", false, "drive simulation sweeps from streaming workload sources (no materialization; Metis cells still materialize)")
		n          = flag.Int("n", 60_000, "transactions per simulation run")
		tableN     = flag.Int("table-n", 200_000, "transactions for offline tables")
		seed       = flag.Int64("seed", 1, "random seed")
		validators = flag.Int("validators", 400, "validators per shard committee")
		workers    = flag.Int("workers", 0, "parallel simulation workers (0 = NumCPU)")
		quick      = flag.Bool("quick", false, "shrink all grids for a fast smoke pass")
		protocol   = flag.String("protocol", "", "commit protocol for the sweeps (default omniledger)")
		strategies = flag.String("strategies", "", "comma-separated strategy set for the figures (default: paper's four)")
		wl         = flag.String("workload", "", "workload spec driving every figure/table/ablation sweep (default: calibrated bitcoin generator)")
		workloads  = flag.String("workloads", "", "workload-scenario set for the scenarios experiment and baseline; ','-separated, or ';'-separated when a spec contains commas (a trailing ';' forces that mode); default: all standalone registered")
		list       = flag.Bool("list", false, "list experiment names and exit")
		baseline   = flag.String("baseline-json", "", "measure hot paths and write the JSON performance record to this file instead of running experiments")
		mergeCache = flag.String("merge-cache", "", "merge row caches: write the union of the positional input rows.jsonl files to this path (inputs must share seed/validators; diverging duplicate cells fail)")
	)
	var prof profiling.Config
	prof.AddFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(optchain.ExperimentNames(), "\n"))
		return 0
	}
	if *listSweeps {
		fmt.Println("sweeps:")
		for _, name := range experiment.SweepNames() {
			fmt.Printf("  %-12s %s\n", name, experiment.SweepDescription(name))
		}
		fmt.Printf("reporters: %s\n", strings.Join(experiment.Reporters(), " "))
		return 0
	}
	if *mergeCache != "" {
		// -merge-cache is an offline file operation; combining it with a
		// run or comparison mode would leave one of the two silently undone.
		for flagName, set := range map[string]bool{
			"-sweep": *sweep != "", "-experiment": *exp != "", "-baseline-json": *baseline != "",
			"-cache": *cacheDir != "", "-stream": *stream, "-diff": *diffMode,
		} {
			if set {
				fmt.Fprintf(os.Stderr, "optchain-bench: %s and -merge-cache are mutually exclusive\n", flagName)
				return 2
			}
		}
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: optchain-bench -merge-cache OUT IN1 [IN2 ...]")
			return 2
		}
		if err := experiment.MergeCacheFiles(*mergeCache, flag.Args()...); err != nil {
			fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
			return 1
		}
		fmt.Printf("merged %d cache file(s) into %s\n", flag.NArg(), *mergeCache)
		return 0
	}
	if *diffMode {
		// -diff is an offline comparison; combining it with a run mode
		// would leave one of the two silently undone.
		for flagName, set := range map[string]bool{
			"-sweep": *sweep != "", "-experiment": *exp != "", "-baseline-json": *baseline != "",
			"-cache": *cacheDir != "", "-stream": *stream,
		} {
			if set {
				fmt.Fprintf(os.Stderr, "optchain-bench: %s and -diff are mutually exclusive\n", flagName)
				return 2
			}
		}
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: optchain-bench -diff [-tol-tps F] [-tol-cross F] [-tol-crosschunk F] [-tol-nstx F] [-allow-missing] OLD NEW")
			return 2
		}
		tol := experiment.Tolerances{
			SteadyTPS:          *tolTPS,
			CrossFraction:      *tolCross,
			CrossChunkFraction: *tolChunk,
			NsPerTx:            *tolNsTx,
			AllowMissing:       *allowMiss,
		}
		return runDiff(flag.Arg(0), flag.Arg(1), tol)
	}
	// Reporter knobs without a sweep would be silently inert; fail instead.
	if *sweep == "" {
		for flagName, val := range map[string]string{"-reporter": *reporter, "-out": *out, "-cache": *cacheDir} {
			if val != "" {
				fmt.Fprintf(os.Stderr, "optchain-bench: %s %q requires -sweep (see -list-sweeps)\n", flagName, val)
				return 2
			}
		}
	}
	if *sweep != "" && *exp != "" {
		fmt.Fprintln(os.Stderr, "optchain-bench: -sweep and -experiment are mutually exclusive")
		return 2
	}
	if *baseline != "" {
		// -baseline-json replaces the run; silently dropping a requested
		// sweep or experiment would leave the user believing it executed,
		// and -stream is inert in the baseline sections.
		switch {
		case *sweep != "":
			fmt.Fprintln(os.Stderr, "optchain-bench: -sweep and -baseline-json are mutually exclusive")
			return 2
		case *exp != "":
			fmt.Fprintln(os.Stderr, "optchain-bench: -experiment and -baseline-json are mutually exclusive")
			return 2
		case *stream:
			fmt.Fprintln(os.Stderr, "optchain-bench: -stream does not apply to -baseline-json (the baseline sections fix their own streaming mode)")
			return 2
		}
	}

	params := optchain.BenchParams{
		N:          *n,
		TableN:     *tableN,
		Seed:       *seed,
		Validators: *validators,
		Workers:    *workers,
		Quick:      *quick,
		Streaming:  *stream,
		CacheDir:   *cacheDir,
	}
	if *protocol != "" {
		if !optchain.HasProtocol(*protocol) {
			fmt.Fprintf(os.Stderr, "unknown protocol %q; registered: %s\n",
				*protocol, strings.Join(optchain.Protocols(), " "))
			return 2
		}
		params.Protocol = *protocol
	}
	if *strategies != "" {
		for _, name := range strings.Split(*strategies, ",") {
			name = strings.TrimSpace(name)
			if !optchain.HasStrategy(name) {
				fmt.Fprintf(os.Stderr, "unknown strategy %q; registered: %s\n",
					name, strings.Join(optchain.Strategies(), " "))
				return 2
			}
			params.Strategies = append(params.Strategies, name)
		}
	}
	if *wl != "" {
		if _, _, err := optchain.ParseWorkloadSpec(*wl); err != nil {
			fmt.Fprintf(os.Stderr, "optchain-bench: -workload: %v\n", err)
			return 2
		}
		params.Workload = *wl
	}
	if *workloads != "" {
		specs, err := optchain.SplitWorkloadList(*workloads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optchain-bench: -workloads: %v\n", err)
			return 2
		}
		params.Workloads = specs
	}

	h := optchain.NewBenchHarness(params)

	// One interrupt context for every mode: Ctrl-C cancels the experiment,
	// sweep, or baseline run between cells instead of killing mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
		}
	}()

	start := time.Now()
	if *baseline != "" {
		f, err := os.Create(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
			return 1
		}
		err = optchain.WriteBenchBaseline(ctx, h, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s in %.1fs\n", *baseline, time.Since(start).Seconds())
		return 0
	}

	if *sweep != "" {
		if err := runSweep(ctx, h, *sweep, *reporter, *out); err != nil {
			fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
		return 0
	}

	name := *exp
	if name == "" {
		name = "all"
	}
	if name == "all" {
		err = optchain.RunAllExperiments(ctx, h, os.Stdout)
	} else {
		err = optchain.RunExperiment(ctx, h, name, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
	return 0
}

// runDiff joins two row files on cell identity, renders the verdict table,
// and returns the process exit code: 0 when the gate passes, 1 on a
// quality regression (or unusable input), so CI can gate directly on
// `optchain-bench -diff old.jsonl new.jsonl`.
func runDiff(oldPath, newPath string, tol experiment.Tolerances) int {
	rep, err := experiment.DiffFiles(oldPath, newPath, tol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optchain-bench: -diff: %v\n", err)
		return 1
	}
	fmt.Printf("quality diff: old=%s new=%s\n", oldPath, newPath)
	if err := rep.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "optchain-bench: -diff: %v\n", err)
		return 1
	}
	if err := rep.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
		return 1
	}
	return 0
}

// runSweep streams one registered sweep through the selected reporter.
// Cancelling ctx (Ctrl-C) stops the sweep; rows completed before the
// interrupt are flushed to the reporter before the error is reported.
func runSweep(ctx context.Context, h interface {
	Report(ctx context.Context, s experiment.Sweep, rep experiment.Reporter) error
	Params() experiment.Params
}, name, reporterSpec, outPath string) (err error) {
	s, err := experiment.BuildSweep(name, h.Params())
	if err != nil {
		return err
	}
	// A parallelism sweep on a one-core host can only show a flat speedup
	// curve; say so up front instead of letting the numbers mislead.
	if len(s.Parallelisms) > 0 && runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintf(os.Stderr, "optchain-bench: warning: %s\n", bench.SingleCoreNote)
	}
	if reporterSpec == "" {
		reporterSpec = "text"
	}
	// Validate the whole reporter spec — name AND option values — before
	// touching -out: a typo must not truncate an existing results file.
	if _, err := experiment.NewReporter(reporterSpec, io.Discard); err != nil {
		return err
	}
	w := os.Stdout
	if outPath != "" {
		f, ferr := os.Create(outPath)
		if ferr != nil {
			return ferr
		}
		// A failed close means the flushed results never reached disk; the
		// run must exit non-zero, not just print a warning.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	rep, err := experiment.NewReporter(reporterSpec, w)
	if err != nil {
		return err
	}
	return h.Report(ctx, s, rep)
}
