// Command optchain-bench regenerates the tables and figures of the
// OptChain paper's evaluation (ICDCS 2019, §IV-B and §V) on the synthetic
// Bitcoin-like workload, printing each as a text report.
//
// Usage:
//
//	optchain-bench -experiment all
//	optchain-bench -experiment table1 -table-n 500000
//	optchain-bench -experiment fig3 -n 100000 -validators 400
//	optchain-bench -quick -experiment all       # fast smoke pass
//
// Experiment names: fig2 table1 table2 fig3..fig11 ablation-{l2s,alpha,
// weight,backend}. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"optchain/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment to run, or 'all'")
		n          = flag.Int("n", 60_000, "transactions per simulation run")
		tableN     = flag.Int("table-n", 200_000, "transactions for offline tables")
		seed       = flag.Int64("seed", 1, "random seed")
		validators = flag.Int("validators", 400, "validators per shard committee")
		workers    = flag.Int("workers", 0, "parallel simulation workers (0 = NumCPU)")
		quick      = flag.Bool("quick", false, "shrink all grids for a fast smoke pass")
		list       = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Names(), "\n"))
		return 0
	}

	h := bench.NewHarness(bench.Params{
		N:          *n,
		TableN:     *tableN,
		Seed:       *seed,
		Validators: *validators,
		Workers:    *workers,
		Quick:      *quick,
	})

	start := time.Now()
	var err error
	if *experiment == "all" {
		err = bench.RunAll(h, os.Stdout)
	} else if fn, ok := bench.Experiments[*experiment]; ok {
		err = fn(h, os.Stdout)
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n",
			*experiment, strings.Join(bench.Names(), " "))
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
	return 0
}
