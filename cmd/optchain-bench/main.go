// Command optchain-bench regenerates the tables and figures of the
// OptChain paper's evaluation (ICDCS 2019, §IV-B and §V) on the synthetic
// Bitcoin-like workload, printing each as a text report.
//
// Usage:
//
//	optchain-bench -experiment all
//	optchain-bench -experiment table1 -table-n 500000
//	optchain-bench -experiment fig3 -n 100000 -validators 400
//	optchain-bench -experiment fig3 -protocol rapidchain
//	optchain-bench -experiment fig4 -strategies OptChain,OmniLedger
//	optchain-bench -experiment fig5 -workload mix:bitcoin=0.7,hotspot=0.3
//	optchain-bench -experiment table1 -workload "replay:trace.tan"
//	optchain-bench -experiment scenarios                     # workload lab
//	optchain-bench -experiment scenarios -workloads hotspot,adversarial
//	optchain-bench -quick -experiment all       # fast smoke pass
//
// The -strategies, -protocol, -workload, and -workloads flags resolve
// through the open registries, so strategies/protocols/workloads added with
// optchain.RegisterStrategy / RegisterProtocol / RegisterWorkload are
// selectable here too. Experiment names: fig2 table1 table2 fig3..fig11
// scenarios ablation-{l2s,alpha,weight,backend}.
//
// -workload selects the stream driving EVERY figure, table, and ablation
// sweep: any workload spec (see SCENARIOS.md for the grammar), materialized
// at each experiment's stream length in place of the calibrated Bitcoin
// generator. -workloads (plural) instead picks the scenario SET the
// `scenarios` experiment and the baseline's per-scenario section stream;
// separate entries with ";" when a spec itself contains commas. The
// scenarios experiment sweeps workload scenarios (hot-spot skew, bursts,
// drift, adversarial, mixes) against the strategy set.
//
// -baseline-json FILE measures the hot-path micro-benchmarks and one quick
// simulation per strategy × protocol, and writes the machine-readable
// performance record tracked as BENCH_baseline.json (`make bench-json`).
// -cpuprofile/-memprofile/-trace capture runtime profiles of any run (see
// PERFORMANCE.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"optchain"
	"optchain/internal/profiling"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment to run, or 'all'")
		n          = flag.Int("n", 60_000, "transactions per simulation run")
		tableN     = flag.Int("table-n", 200_000, "transactions for offline tables")
		seed       = flag.Int64("seed", 1, "random seed")
		validators = flag.Int("validators", 400, "validators per shard committee")
		workers    = flag.Int("workers", 0, "parallel simulation workers (0 = NumCPU)")
		quick      = flag.Bool("quick", false, "shrink all grids for a fast smoke pass")
		protocol   = flag.String("protocol", "", "commit protocol for the sweeps (default omniledger)")
		strategies = flag.String("strategies", "", "comma-separated strategy set for the figures (default: paper's four)")
		wl         = flag.String("workload", "", "workload spec driving every figure/table/ablation sweep (default: calibrated bitcoin generator)")
		workloads  = flag.String("workloads", "", "workload-scenario set for the scenarios experiment and baseline, ','-separated; use ';' separators when specs contain commas (a trailing ';' forces that mode for a single spec); default: all standalone registered")
		list       = flag.Bool("list", false, "list experiment names and exit")
		baseline   = flag.String("baseline-json", "", "measure hot paths and write the JSON performance record to this file instead of running experiments")
	)
	var prof profiling.Config
	prof.AddFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(optchain.ExperimentNames(), "\n"))
		return 0
	}

	params := optchain.BenchParams{
		N:          *n,
		TableN:     *tableN,
		Seed:       *seed,
		Validators: *validators,
		Workers:    *workers,
		Quick:      *quick,
	}
	if *protocol != "" {
		if !optchain.HasProtocol(*protocol) {
			fmt.Fprintf(os.Stderr, "unknown protocol %q; registered: %s\n",
				*protocol, strings.Join(optchain.Protocols(), " "))
			return 2
		}
		params.Protocol = optchain.Protocol(*protocol)
	}
	if *strategies != "" {
		for _, name := range strings.Split(*strategies, ",") {
			name = strings.TrimSpace(name)
			if !optchain.HasStrategy(name) {
				fmt.Fprintf(os.Stderr, "unknown strategy %q; registered: %s\n",
					name, strings.Join(optchain.Strategies(), " "))
				return 2
			}
			params.Strategies = append(params.Strategies, optchain.Strategy(name))
		}
	}
	if *wl != "" {
		if _, _, err := optchain.ParseWorkloadSpec(*wl); err != nil {
			fmt.Fprintf(os.Stderr, "optchain-bench: -workload: %v\n", err)
			return 2
		}
		params.Workload = *wl
	}
	if *workloads != "" {
		sep := ","
		if strings.Contains(*workloads, ";") {
			sep = ";" // specs like mix:a=0.5,b=0.5 carry their own commas
		}
		for _, spec := range strings.Split(*workloads, sep) {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				// A trailing ';' is the documented way to force ';'-mode
				// for a single comma-bearing spec; blanks are not entries.
				continue
			}
			if _, _, err := optchain.ParseWorkloadSpec(spec); err != nil {
				fmt.Fprintf(os.Stderr, "optchain-bench: -workloads: %v\n", err)
				return 2
			}
			params.Workloads = append(params.Workloads, spec)
		}
	}

	h := optchain.NewBenchHarness(params)

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
		}
	}()

	start := time.Now()
	if *baseline != "" {
		f, err := os.Create(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
			return 1
		}
		err = optchain.WriteBenchBaseline(h, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s in %.1fs\n", *baseline, time.Since(start).Seconds())
		return 0
	}
	if *experiment == "all" {
		err = optchain.RunAllExperiments(h, os.Stdout)
	} else {
		err = optchain.RunExperiment(h, *experiment, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "optchain-bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
	return 0
}
