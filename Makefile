# Developer targets; CI (.github/workflows/ci.yml) runs `make ci`.

GO ?= go

.PHONY: all build test vet fmt fmt-check bench-smoke examples ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One iteration of every benchmark — a compile-and-run smoke pass, not a
# measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Build (not run) every example and cmd binary.
examples:
	$(GO) build ./examples/... ./cmd/...

ci: fmt-check vet build test bench-smoke
