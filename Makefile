# Developer targets; CI (.github/workflows/ci.yml) runs `make ci`.

GO ?= go

.PHONY: all build test test-race vet fmt fmt-check bench-smoke bench-json examples ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One iteration of every benchmark — a compile-and-run smoke pass, not a
# measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable performance record: hot-path micro-benchmarks (ns/op,
# allocs/op) plus quick per-strategy×protocol simulation throughput. CI
# uploads the file as an artifact; see PERFORMANCE.md.
bench-json:
	$(GO) run ./cmd/optchain-bench -quick -baseline-json BENCH_baseline.json

# Build (not run) every example and cmd binary.
examples:
	$(GO) build ./examples/... ./cmd/...

ci: fmt-check vet build test bench-smoke
