# Developer targets; CI (.github/workflows/ci.yml) runs `make ci`.

GO ?= go

.PHONY: all build test test-race vet fmt fmt-check bench-smoke bench-json examples scenario-smoke fuzz-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One iteration of every benchmark — a compile-and-run smoke pass, not a
# measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable performance record: hot-path micro-benchmarks (ns/op,
# allocs/op) plus quick per-strategy×protocol simulation throughput. CI
# uploads the file as an artifact; see PERFORMANCE.md.
bench-json:
	$(GO) run ./cmd/optchain-bench -quick -baseline-json BENCH_baseline.json

# Build (not run) every example and cmd binary.
examples:
	$(GO) build ./examples/... ./cmd/...

# Every workload scenario must run end-to-end through a small simulation.
scenario-smoke:
	$(GO) run ./cmd/optchain-sim -workload hotspot -txs 5000 -validators 8
	$(GO) run ./cmd/optchain-sim -workload burst -txs 5000 -validators 8
	$(GO) run ./cmd/optchain-sim -workload adversarial -txs 5000 -validators 8
	$(GO) run ./cmd/optchain-sim -workload drift -txs 5000 -validators 8
	$(GO) run ./cmd/optchain-sim -workload bitcoin -txs 5000 -validators 8

# Short fuzz pass over the dataset decoder (panic-safety + round-trip).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/dataset

ci: fmt-check vet build test bench-smoke
