# Developer targets; CI (.github/workflows/ci.yml) runs `make ci`.

GO ?= go

.PHONY: all build test test-race vet fmt fmt-check lint lint-json bench-smoke bench-json bench-scaling examples scenario-smoke fuzz-smoke sweep-smoke serve-smoke quality-gate cover docs-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detector across the whole module — including the experiment layer's
# Runner fan-out and cancellation paths, and the analyzer corpus + self-lint
# suites in internal/analyze (nothing there is -short-gated, so the corpora
# run under -race here too). -failfast stops on the first racy package; the
# timeout converts a goroutine deadlock into a stack dump instead of a hung
# CI job.
test-race:
	$(GO) test -race -failfast -timeout 10m ./...

vet:
	$(GO) vet ./...

# Repo-specific contract enforcement: the optchain-lint suite (determinism,
# hotpath, lockcheck, apierrors, forkpurity, spawncheck, ctxcheck,
# atomiccheck — see PERFORMANCE.md "Static analysis & contracts").
# staticcheck and govulncheck run when installed (CI installs pinned
# versions; locally they are optional extras, not requirements).
lint:
	$(GO) run ./cmd/optchain-lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

# Machine-readable lint report (schema optchain-lint/v1): same findings as
# `make lint`, rendered as stable JSON in lint-findings.json. CI archives
# the file as an artifact and fails on a non-empty findings array. Exits
# non-zero when there are findings, like lint.
lint-json:
	$(GO) run ./cmd/optchain-lint -json -out lint-findings.json ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One iteration of every benchmark — a compile-and-run smoke pass, not a
# measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable performance record: hot-path micro-benchmarks (ns/op,
# allocs/op) plus quick per-strategy×protocol simulation throughput. CI
# uploads the file as an artifact; see PERFORMANCE.md.
bench-json:
	$(GO) run ./cmd/optchain-bench -quick -baseline-json BENCH_baseline.json

# Concurrent-placement scaling curve: the parallel-quality sweep reports
# decision drift per epoch worker count; the throughput side of the curve
# (ns/tx, speedup vs one worker) is the Parallel section bench-json writes
# into BENCH_baseline.json.
bench-scaling:
	$(GO) run ./cmd/optchain-bench -quick -sweep parallel-quality -reporter text

# Build (not run) every example and cmd binary.
examples:
	$(GO) build ./examples/... ./cmd/...

# Every workload scenario must run end-to-end through a small simulation —
# including a composed mix and a recorded-trace replay.
scenario-smoke:
	$(GO) run ./cmd/optchain-sim -workload hotspot -txs 5000 -validators 8
	$(GO) run ./cmd/optchain-sim -workload burst -txs 5000 -validators 8
	$(GO) run ./cmd/optchain-sim -workload adversarial -txs 5000 -validators 8
	$(GO) run ./cmd/optchain-sim -workload drift -txs 5000 -validators 8
	$(GO) run ./cmd/optchain-sim -workload bitcoin -txs 5000 -validators 8
	$(GO) run ./cmd/optchain-sim -workload "mix:bitcoin=0.6,hotspot=0.25,adversarial=0.15" -txs 5000 -validators 8
	$(GO) run ./cmd/tangen -n 3000 -o smoke-replay.tan
	$(GO) run ./cmd/optchain-sim -workload "replay:smoke-replay.tan,mod=(burst:boost=4)" -txs 3000 -validators 8
	rm -f smoke-replay.tan

# Short fuzz passes: the dataset decoder (panic-safety + round-trip) and
# the quality-gate row decoders (DecodeRows and the row-cache loader must
# reject arbitrary bytes with ErrBadCache, never panic).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/dataset
	$(GO) test -run '^$$' -fuzz FuzzDiffRows -fuzztime 10s ./experiment

# Tiny 2x2 streaming sweep through the JSONL reporter, validated with the
# sweepcheck checker: the experiment layer's data path (streamed cells,
# stable row identity, machine-readable output) stays working, not just
# compilable.
sweep-smoke:
	@rc=0; \
	$(GO) run ./cmd/optchain-bench -quick -sweep smoke -reporter jsonl -out sweep-smoke.jsonl \
		&& $(GO) run ./internal/sweepcheck -rows 4 -streamed sweep-smoke.jsonl || rc=$$?; \
	rm -f sweep-smoke.jsonl; exit $$rc

# HTTP gateway smoke (see PERFORMANCE.md "Serving placement"): servecheck
# drives the serve package end to end over a real TCP listener — place a
# workload over /v1/place with parent-id references, scrape /metrics, shut
# down (writing the final state snapshot), restart with restore, and place
# the rest — asserting every decision matches an uninterrupted reference
# run. It prints the serving-path tail latencies into the CI log.
serve-smoke:
	$(GO) run ./internal/servecheck

# Placement-quality gate (see PERFORMANCE.md "Quality gates"). Four checks
# in one pipeline:
#   1. the quality sweep runs cold into a fresh row cache;
#   2. it runs again resumed from that cache (sweepcheck validates the
#      cache file: header line, pure cell rows, zero wall clocks);
#   3. cold vs resumed rows must match at zero tolerance — the cache must
#      reproduce execution exactly, not approximately;
#   4. the resumed rows gate against the committed BENCH_baseline.json
#      quality columns at loose 10% tolerances (-allow-missing skips the
#      baseline's scenario cells, which this sweep does not run).
# Any regression exits non-zero and fails CI.
quality-gate:
	@rc=0; \
	rm -rf qg-cache qg-cold.jsonl qg-warm.jsonl; \
	$(GO) run ./cmd/optchain-bench -quick -sweep quality -reporter jsonl -cache qg-cache -out qg-cold.jsonl \
		&& $(GO) run ./cmd/optchain-bench -quick -sweep quality -reporter jsonl -cache qg-cache -out qg-warm.jsonl \
		&& $(GO) run ./internal/sweepcheck -cache -rows 8 qg-cache/rows.jsonl \
		&& $(GO) run ./cmd/optchain-bench -diff -tol-tps 0 -tol-cross 0 -tol-crosschunk 0 qg-cold.jsonl qg-warm.jsonl \
		&& $(GO) run ./cmd/optchain-bench -diff -allow-missing -tol-tps 0.1 -tol-cross 0.1 -tol-crosschunk 0.1 BENCH_baseline.json qg-warm.jsonl \
		|| rc=$$?; \
	rm -rf qg-cache qg-cold.jsonl qg-warm.jsonl; exit $$rc

# Per-package statement coverage with committed floors: the merged profile
# lands in cover.out (CI uploads it as an artifact) and covercheck fails
# the build when any tested package drops below COVERAGE_floors.txt — a
# ratchet against coverage rot, raised as coverage grows.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./internal/covercheck -profile cover.out -floors COVERAGE_floors.txt

# Documentation hygiene: examples stay gofmt-clean and the markdown surface
# (README, SCENARIOS, PERFORMANCE) has no broken relative links.
docs-check:
	@out="$$(gofmt -l examples)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	$(GO) run ./internal/docscheck README.md SCENARIOS.md PERFORMANCE.md

ci: fmt-check vet lint build test bench-smoke sweep-smoke serve-smoke quality-gate docs-check
