module optchain

go 1.24
