package optchain_test

import (
	"bytes"
	"errors"
	"testing"

	"optchain"
)

// snapshotStream materializes a deterministic mixed workload as StreamTx
// values so tests can replay identical halves through multiple engines.
func snapshotStream(t *testing.T, n int, shards int) []optchain.StreamTx {
	t.Helper()
	d, err := optchain.MaterializeWorkload(
		"mix:bitcoin=0.6,hotspot=0.25,adversarial=0.15",
		optchain.WorkloadParams{N: n, Seed: 7, Shards: shards})
	if err != nil {
		t.Fatalf("materialize workload: %v", err)
	}
	var txs []optchain.StreamTx
	for tx := range optchain.DatasetStream(d) {
		ins := make([]int, len(tx.Inputs))
		copy(ins, tx.Inputs)
		txs = append(txs, optchain.StreamTx{Inputs: ins, Outputs: tx.Outputs})
	}
	if len(txs) != n {
		t.Fatalf("materialized %d txs, want %d", len(txs), n)
	}
	return txs
}

func snapshotEngine(t *testing.T, strategy string, n int, extra ...optchain.Option) *optchain.Engine {
	t.Helper()
	opts := append([]optchain.Option{
		optchain.WithShards(8),
		optchain.WithStrategy(strategy),
		optchain.WithStreamCapacity(n),
		optchain.WithSeed(1),
	}, extra...)
	e, err := optchain.New(opts...)
	if err != nil {
		t.Fatalf("New(%s): %v", strategy, err)
	}
	return e
}

// TestSnapshotRoundTripDecisionFidelity is the restore-fidelity proof: a
// workload replays uninterrupted through engine A; engine B places the
// first half and snapshots; a fresh engine C restores the snapshot and
// places the second half. C's decisions must be bit-identical to A's on
// the same suffix, and the final counters must agree exactly.
func TestSnapshotRoundTripDecisionFidelity(t *testing.T) {
	const n = 3000
	txs := snapshotStream(t, n, 8)
	half := n / 2
	for _, strategy := range []string{"OptChain", "T2S", "Greedy", "OmniLedger"} {
		t.Run(strategy, func(t *testing.T) {
			a := snapshotEngine(t, strategy, n)
			first, err := a.PlaceBatch(txs[:half], nil)
			if err != nil {
				t.Fatalf("A first half: %v", err)
			}
			want, err := a.PlaceBatch(txs[half:], nil)
			if err != nil {
				t.Fatalf("A second half: %v", err)
			}

			b := snapshotEngine(t, strategy, n)
			bFirst, err := b.PlaceBatch(txs[:half], nil)
			if err != nil {
				t.Fatalf("B first half: %v", err)
			}
			for i := range first {
				if first[i] != bFirst[i] {
					t.Fatalf("A and B disagree at %d before any snapshot: %d vs %d", i, first[i], bFirst[i])
				}
			}
			var snap bytes.Buffer
			if err := b.WriteSnapshot(&snap); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}

			c := snapshotEngine(t, strategy, n)
			if err := c.ReadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatalf("ReadSnapshot: %v", err)
			}
			if got, want := c.Stats(), b.Stats(); got.Placed != want.Placed ||
				got.Cross != want.Cross || got.CrossFraction != want.CrossFraction {
				t.Fatalf("restored stats %+v, want %+v", got, want)
			}
			got, err := c.PlaceBatch(txs[half:], nil)
			if err != nil {
				t.Fatalf("C second half: %v", err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("restored engine diverges at suffix position %d: shard %d, uninterrupted run chose %d",
						half+i, got[i], want[i])
				}
			}
			ga, gc := a.Stats(), c.Stats()
			if ga.Placed != gc.Placed || ga.Cross != gc.Cross {
				t.Fatalf("final stats diverge: uninterrupted %+v, restored %+v", ga, gc)
			}
		})
	}
}

// TestSnapshotRoundTripParallel proves fidelity holds through the parallel
// epoch path too, as long as both runs use the same batch boundaries.
func TestSnapshotRoundTripParallel(t *testing.T) {
	const n = 2000
	txs := snapshotStream(t, n, 8)
	half := n / 2
	par := []optchain.Option{optchain.WithParallelism(2), optchain.WithBatchSize(256)}

	a := snapshotEngine(t, "OptChain", n, par...)
	if _, err := a.PlaceBatch(txs[:half], nil); err != nil {
		t.Fatalf("A first half: %v", err)
	}
	want, err := a.PlaceBatch(txs[half:], nil)
	if err != nil {
		t.Fatalf("A second half: %v", err)
	}

	b := snapshotEngine(t, "OptChain", n, par...)
	if _, err := b.PlaceBatch(txs[:half], nil); err != nil {
		t.Fatalf("B first half: %v", err)
	}
	var snap bytes.Buffer
	if err := b.WriteSnapshot(&snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	c := snapshotEngine(t, "OptChain", n, par...)
	if err := c.ReadSnapshot(&snap); err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	got, err := c.PlaceBatch(txs[half:], nil)
	if err != nil {
		t.Fatalf("C second half: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parallel restore diverges at %d: %d vs %d", half+i, got[i], want[i])
		}
	}
	if as, cs := a.Stats(), c.Stats(); as.ParallelInputRefs != cs.ParallelInputRefs ||
		as.CrossChunkRefs != cs.CrossChunkRefs {
		t.Fatalf("epoch counters diverge: %+v vs %+v", as, cs)
	}
}

// TestSnapshotEmptyEngine: snapshotting before any placement restores to a
// state indistinguishable from fresh.
func TestSnapshotEmptyEngine(t *testing.T) {
	const n = 500
	txs := snapshotStream(t, n, 8)
	a := snapshotEngine(t, "OptChain", n)
	var snap bytes.Buffer
	if err := a.WriteSnapshot(&snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	b := snapshotEngine(t, "OptChain", n)
	if err := b.ReadSnapshot(&snap); err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	want, err := a.PlaceBatch(txs, nil)
	if err != nil {
		t.Fatalf("A: %v", err)
	}
	got, err := b.PlaceBatch(txs, nil)
	if err != nil {
		t.Fatalf("B: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("empty-snapshot restore diverges at %d", i)
		}
	}
}

// TestSnapshotFingerprintMismatch: every decision-relevant configuration
// disagreement is rejected with ErrBadSnapshot before any state is adopted.
func TestSnapshotFingerprintMismatch(t *testing.T) {
	const n = 200
	txs := snapshotStream(t, n, 8)
	src := snapshotEngine(t, "OptChain", n)
	if _, err := src.PlaceBatch(txs[:100], nil); err != nil {
		t.Fatalf("place: %v", err)
	}
	var snap bytes.Buffer
	if err := src.WriteSnapshot(&snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	cases := map[string][]optchain.Option{
		"strategy": {optchain.WithShards(8), optchain.WithStrategy("T2S"), optchain.WithStreamCapacity(n), optchain.WithSeed(1)},
		"shards":   {optchain.WithShards(4), optchain.WithStrategy("OptChain"), optchain.WithStreamCapacity(n), optchain.WithSeed(1)},
		"alpha":    {optchain.WithShards(8), optchain.WithStrategy("OptChain"), optchain.WithStreamCapacity(n), optchain.WithAlpha(0.9)},
		"weight":   {optchain.WithShards(8), optchain.WithStrategy("OptChain"), optchain.WithStreamCapacity(n), optchain.WithL2SWeight(0.5)},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			e, err := optchain.New(opts...)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := e.ReadSnapshot(bytes.NewReader(snap.Bytes())); !errors.Is(err, optchain.ErrBadSnapshot) {
				t.Fatalf("mismatched %s restored with err=%v, want ErrBadSnapshot", name, err)
			}
		})
	}
}

// TestSnapshotRejectsNonFreshEngine: restore over existing placements fails.
func TestSnapshotRejectsNonFreshEngine(t *testing.T) {
	const n = 200
	txs := snapshotStream(t, n, 8)
	src := snapshotEngine(t, "OptChain", n)
	if _, err := src.PlaceBatch(txs[:50], nil); err != nil {
		t.Fatalf("place: %v", err)
	}
	var snap bytes.Buffer
	if err := src.WriteSnapshot(&snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	busy := snapshotEngine(t, "OptChain", n)
	if _, err := busy.PlaceBatch(txs[:10], nil); err != nil {
		t.Fatalf("place: %v", err)
	}
	if err := busy.ReadSnapshot(&snap); !errors.Is(err, optchain.ErrBadSnapshot) {
		t.Fatalf("restore into used engine: err=%v, want ErrBadSnapshot", err)
	}
}

// TestSnapshotUnsupportedStrategy: Metis replays an offline partition and
// has no exportable online state.
func TestSnapshotUnsupportedStrategy(t *testing.T) {
	part := make([]int32, 100)
	e, err := optchain.New(
		optchain.WithShards(8),
		optchain.WithStrategy("Metis"),
		optchain.WithMetisPartition(part),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := e.WriteSnapshot(&bytes.Buffer{}); !errors.Is(err, optchain.ErrSnapshotUnsupported) {
		t.Fatalf("Metis snapshot: err=%v, want ErrSnapshotUnsupported", err)
	}
}

// TestSnapshotCorruption: flipped payload bytes and truncation both fail
// with ErrBadSnapshot (checksum), as does garbage.
func TestSnapshotCorruption(t *testing.T) {
	const n = 300
	txs := snapshotStream(t, n, 8)
	src := snapshotEngine(t, "OptChain", n)
	if _, err := src.PlaceBatch(txs[:150], nil); err != nil {
		t.Fatalf("place: %v", err)
	}
	var snap bytes.Buffer
	if err := src.WriteSnapshot(&snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	raw := snap.Bytes()

	flipped := bytes.Clone(raw)
	flipped[len(flipped)/2] ^= 0x40
	cases := map[string][]byte{
		"flipped bit": flipped,
		"truncated":   raw[:len(raw)-10],
		"garbage":     []byte("not a snapshot at all"),
		"empty":       nil,
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			e := snapshotEngine(t, "OptChain", n)
			if err := e.ReadSnapshot(bytes.NewReader(data)); !errors.Is(err, optchain.ErrBadSnapshot) {
				t.Fatalf("corrupt (%s): err=%v, want ErrBadSnapshot", name, err)
			}
		})
	}
}
