package optchain_test

import (
	"errors"
	"testing"

	"optchain"
)

// collectStream materializes the dataset as StreamTx values.
func collectStream(d *optchain.Dataset) []optchain.StreamTx {
	var txs []optchain.StreamTx
	for tx := range optchain.DatasetStream(d) {
		txs = append(txs, tx)
	}
	return txs
}

// PlaceBatch must make exactly the decisions the equivalent Place sequence
// makes — the strategy state advances identically — for every built-in
// online strategy.
func TestPlaceBatchMatchesPlaceDecisions(t *testing.T) {
	d := smallData(t)
	txs := collectStream(d)
	const k = 8

	for _, strategy := range []string{"OptChain", "T2S", "Greedy", "OmniLedger"} {
		newEngine := func() *optchain.Engine {
			eng, err := optchain.New(
				optchain.WithStrategy(strategy),
				optchain.WithShards(k),
				optchain.WithDataset(d),
			)
			if err != nil {
				t.Fatal(err)
			}
			return eng
		}

		one := newEngine()
		var want []int
		for _, tx := range txs {
			s, err := one.Place(tx)
			if err != nil {
				t.Fatalf("%s: Place: %v", strategy, err)
			}
			want = append(want, s)
		}

		batch := newEngine()
		var got, buf []int
		// Uneven chunk sizes exercise batch boundaries.
		for lo := 0; lo < len(txs); {
			hi := lo + 1 + (lo % 97)
			if hi > len(txs) {
				hi = len(txs)
			}
			var err error
			buf, err = batch.PlaceBatch(txs[lo:hi], buf)
			if err != nil {
				t.Fatalf("%s: PlaceBatch: %v", strategy, err)
			}
			got = append(got, buf...)
			lo = hi
		}

		if len(got) != len(want) {
			t.Fatalf("%s: placed %d via batch, %d via Place", strategy, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: decision %d differs: batch=%d place=%d", strategy, i, got[i], want[i])
			}
		}

		sa, sb := one.Stats(), batch.Stats()
		if sa.Placed != sb.Placed || sa.Cross != sb.Cross || sa.CrossFraction != sb.CrossFraction {
			t.Fatalf("%s: stats diverge: place=%+v batch=%+v", strategy, sa, sb)
		}
	}
}

// A failing transaction mid-batch keeps the placements before it (exactly
// like a failing Place call); the error names the absolute stream position
// and len(result) gives the batch offset.
func TestPlaceBatchPartialFailure(t *testing.T) {
	eng, err := optchain.New(optchain.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	txs := []optchain.StreamTx{
		{Outputs: 2},          // coinbase, ok
		{Inputs: []int{0}},    // ok
		{Inputs: []int{99}},   // forward reference: fails
		{Inputs: []int{0, 1}}, // never reached
	}
	shards, err := eng.PlaceBatch(txs, nil)
	if !errors.Is(err, optchain.ErrBadInput) {
		t.Fatalf("error = %v, want ErrBadInput", err)
	}
	if len(shards) != 2 {
		t.Fatalf("placed %d before the failure, want 2", len(shards))
	}
	if st := eng.Stats(); st.Placed != 2 {
		t.Fatalf("stats after partial batch = %+v", st)
	}
	// The engine remains usable: the failed transaction was rolled back.
	if _, err := eng.Place(optchain.StreamTx{Inputs: []int{0, 1}}); err != nil {
		t.Fatalf("Place after failed batch: %v", err)
	}
}

// The result slice is reused across batches when the caller provides one.
func TestPlaceBatchReusesResultSlice(t *testing.T) {
	eng, err := optchain.New(optchain.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int, 0, 64)
	txs := make([]optchain.StreamTx, 16)
	got, err := eng.PlaceBatch(txs, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(txs) || cap(got) != cap(buf) {
		t.Fatalf("len=%d cap=%d, want len=%d cap=%d (reused)", len(got), cap(got), len(txs), cap(buf))
	}
}
