package optchain

import (
	"context"
	"fmt"
	"io"

	"optchain/internal/bench"
	"optchain/internal/core"
	"optchain/internal/dataset"
	"optchain/internal/metis"
	"optchain/internal/placement"
	"optchain/internal/registry"
	"optchain/internal/shard"
	"optchain/internal/sim"
	"optchain/internal/simnet"
	"optchain/internal/txgraph"
	"optchain/internal/workload"
)

// Re-exported types. These aliases are the public names of the library's
// main objects; the implementation lives in internal packages.
type (
	// Dataset is a generated or loaded Bitcoin-like transaction stream.
	Dataset = dataset.Dataset
	// DatasetConfig parameterizes synthetic stream generation.
	DatasetConfig = dataset.Config
	// Placer decides which shard each transaction is submitted to.
	Placer = placement.Placer
	// Assignment records placement decisions.
	Assignment = placement.Assignment
	// SimConfig parameterizes an end-to-end simulation.
	SimConfig = sim.Config
	// SimResult carries a simulation's metrics.
	SimResult = sim.Result
	// TaNGraph is the Transactions-as-Nodes network.
	TaNGraph = txgraph.Graph
	// Node indexes a transaction in the TaN network / stream order.
	Node = txgraph.Node
	// BenchParams scales the experiment harness.
	BenchParams = bench.Params
	// Telemetry supplies client-observable shard load estimates to the
	// L2S model.
	Telemetry = core.Telemetry
	// NetConfig exposes the simulated network constants (bandwidth,
	// propagation) used by Engine.Run / Simulate.
	NetConfig = simnet.Config
	// ShardConfig exposes the committee constants (block size, block wait,
	// consensus costs) used by Engine.Run / Simulate.
	ShardConfig = shard.Config
)

// Workload-scenario types: the streaming generator layer behind
// WithWorkload and the -workload CLI flags (see internal/workload).
type (
	// WorkloadTx is one generated transaction of a scenario stream.
	WorkloadTx = workload.Tx
	// WorkloadInput references one output of an earlier stream transaction.
	WorkloadInput = workload.Input
	// WorkloadSource is the streaming generator interface scenarios
	// implement: one transaction per Next call, memory bounded by live
	// state rather than stream length.
	WorkloadSource = workload.Source
	// WorkloadObserver is implemented by feedback-aware scenarios; drivers
	// report placement decisions back through it.
	WorkloadObserver = workload.Observer
	// WorkloadParams parameterizes a scenario build (stream length, seed,
	// shard hint, generator knobs, structured spec arguments).
	WorkloadParams = workload.Params
	// WorkloadArg is one structured spec argument (mix components, replay's
	// trace path) carried by WorkloadParams.Args.
	WorkloadArg = workload.Arg
	// WorkloadFactory builds a scenario source from parameters.
	WorkloadFactory = workload.Factory
	// WorkloadModulator shapes a stream's arrival process (burst on/off
	// phases, diurnal drift); replay superimposes one on recorded traces.
	WorkloadModulator = workload.Modulator
)

// RegisterWorkload adds a workload scenario to the open registry under the
// given case-insensitive name, making it selectable everywhere a workload
// name is accepted: WithWorkload, SimConfig.Source construction, and the
// -workload flags of the cmd/ binaries.
func RegisterWorkload(name string, f WorkloadFactory) error {
	return workload.Register(name, f)
}

// Workloads enumerates the registered workload scenarios, sorted.
func Workloads() []string { return workload.Names() }

// StandaloneWorkloads enumerates the scenarios that build from bare
// parameters — every scenario except the ones needing spec arguments
// (replay, which needs a trace file). Default scenario sweeps cover this
// set.
func StandaloneWorkloads() []string { return workload.StandaloneNames() }

// HasWorkload reports whether name resolves to a registered scenario.
func HasWorkload(name string) bool { return workload.Has(name) }

// NewWorkloadSource builds a scenario from a bare name or a full workload
// spec ("mix:bitcoin=0.7,hotspot=0.3") — the streaming form consumers drive
// directly (Engine.PlaceWorkload and Engine.Run wrap it; use
// MaterializeWorkload for a full Dataset). See SCENARIOS.md for the
// grammar.
func NewWorkloadSource(spec string, p WorkloadParams) (WorkloadSource, error) {
	return workload.New(spec, p)
}

// ParseWorkloadSpec splits a workload spec into the scenario name and its
// numeric knob map, validating the name against the registry: unknown
// scenarios fail with an error naming the offending token and listing
// everything registered. Composite structure (mix components, replay
// arguments) is preserved only by passing the spec string itself to
// NewWorkloadSource / WithWorkload; the grammar is documented in
// SCENARIOS.md.
func ParseWorkloadSpec(spec string) (string, map[string]float64, error) {
	return workload.ParseSpec(spec)
}

// SplitWorkloadList splits a list of workload specs ("bitcoin,hotspot" or
// "mix:bitcoin=0.7,hotspot=0.3;adversarial") into its entries, sharing the
// spec grammar's paren-aware tokenizer: entries are ','-separated, or
// ';'-separated when the list contains a top-level ';'; separators nested
// inside parentheses belong to the inner spec and never split it. Every
// entry is validated; a failure names the offending fragment. This is the
// splitter behind cmd/optchain-bench -workloads.
func SplitWorkloadList(list string) ([]string, error) {
	return workload.SplitList(list)
}

// NewWorkloadModulator builds an arrival modulator ("burst:boost=4",
// "drift:period=20000,amp=0.5") — the shape replay's mod= argument
// superimposes on recorded traces.
func NewWorkloadModulator(spec string, seed int64) (WorkloadModulator, error) {
	return workload.NewModulator(spec, seed)
}

// MaterializeWorkload drains a scenario (bare name or full spec) into a
// Dataset — for tangen and offline tables; streaming consumers never need
// it.
func MaterializeWorkload(spec string, p WorkloadParams) (*Dataset, error) {
	src, err := workload.New(spec, p)
	if err != nil {
		return nil, err
	}
	defer workload.Close(src)
	return workload.Materialize(src, p.N)
}

// Extension-point types for RegisterStrategy / RegisterProtocol.
type (
	// StrategyContext carries what a placement strategy may need at
	// construction time (shard count, stream-length hint, telemetry, …).
	StrategyContext = registry.StrategyContext
	// StrategyFactory builds a placement strategy from a context.
	StrategyFactory = registry.StrategyFactory
	// ProtocolContext carries the simulation state a commit protocol
	// attaches to.
	ProtocolContext = registry.ProtocolContext
	// ProtocolFactory builds a commit backend from a context.
	ProtocolFactory = registry.ProtocolFactory
	// CommitBackend is the interface a cross-shard commit protocol
	// implements.
	CommitBackend = registry.CommitBackend
)

// RegisterStrategy adds a placement strategy to the open registry under the
// given case-insensitive name, making it selectable everywhere a strategy
// name is accepted: WithStrategy, SimConfig.Placer, and the -strategy flag
// of cmd/optchain-sim. Registering a duplicate or empty name returns an
// error.
func RegisterStrategy(name string, f StrategyFactory) error {
	return registry.RegisterStrategy(name, f)
}

// RegisterProtocol adds a cross-shard commit protocol to the open registry,
// with the same naming rules as RegisterStrategy.
func RegisterProtocol(name string, f ProtocolFactory) error {
	return registry.RegisterProtocol(name, f)
}

// Strategies enumerates the registered placement strategies, sorted.
func Strategies() []string { return registry.Strategies() }

// Protocols enumerates the registered commit protocols, sorted.
func Protocols() []string { return registry.Protocols() }

// HasStrategy reports whether name resolves to a registered strategy,
// under the registry's case-insensitive matching rules.
func HasStrategy(name string) bool { return registry.HasStrategy(name) }

// HasProtocol reports whether name resolves to a registered protocol.
func HasProtocol(name string) bool { return registry.HasProtocol(name) }

// Strategy names a transaction placement algorithm.
//
// Deprecated: strategies are identified by plain registry names now (see
// Strategies); the typed constants remain for one release.
type Strategy = sim.PlacerKind

// The built-in placement strategies from the paper's evaluation.
const (
	// StrategyOptChain is the full Temporal Fitness algorithm (Alg. 1).
	StrategyOptChain = sim.PlacerOptChain
	// StrategyT2S is the capacity-bounded T2S-only variant (§IV-B).
	StrategyT2S = sim.PlacerT2S
	// StrategyRandom is OmniLedger's hash-based placement.
	StrategyRandom = sim.PlacerRandom
	// StrategyGreedy is the one-hop input-coverage heuristic.
	StrategyGreedy = sim.PlacerGreedy
	// StrategyMetis replays an offline Metis k-way partition.
	StrategyMetis = sim.PlacerMetis
)

// Protocol names a cross-shard commit backend.
//
// Deprecated: protocols are identified by plain registry names now (see
// Protocols); the typed constants remain for one release.
type Protocol = sim.ProtocolKind

// The built-in commit backends.
const (
	// ProtocolOmniLedger is the client-driven atomic commit of §III-A.
	ProtocolOmniLedger = sim.ProtoOmniLedger
	// ProtocolRapidChain is the committee-driven yanking mechanism.
	ProtocolRapidChain = sim.ProtoRapidChain
)

// DatasetDefaults returns the generator calibration used throughout the
// benchmarks (TaN degree statistics matching the paper's Fig. 2).
func DatasetDefaults() DatasetConfig { return dataset.DefaultConfig() }

// GenerateDataset produces a synthetic Bitcoin-like transaction stream.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// LoadDataset decodes a stream written by (*Dataset).Encode.
func LoadDataset(r io.Reader) (*Dataset, error) { return dataset.Decode(r) }

// TraceConvertConfig parameterizes real-trace conversion (see
// ConvertTraceCSV / ConvertTraceJSON).
type TraceConvertConfig = dataset.ConvertConfig

// ConvertTraceCSV converts a txid-keyed CSV trace excerpt (published
// Bitcoin trace extracts: `txid,inputs,outputs` with '|'-separated
// txid:vout outpoints and output values) into a positionally-referenced
// Dataset ready for (*Dataset).Encode → `replay:`. It returns the number
// of out-of-excerpt inputs dropped under cfg.SkipForeign; without that
// flag a foreign reference is an error naming the txid. The pipeline is
// documented in SCENARIOS.md; cmd/tangen -from-csv drives it.
func ConvertTraceCSV(r io.Reader, cfg TraceConvertConfig) (*Dataset, int64, error) {
	return dataset.ConvertCSV(r, cfg)
}

// ConvertTraceJSON converts a JSON trace excerpt — an array of
// {"txid","inputs","outputs"} objects or a JSONL stream of them — exactly
// like ConvertTraceCSV. cmd/tangen -from-json drives it.
func ConvertTraceJSON(r io.Reader, cfg TraceConvertConfig) (*Dataset, int64, error) {
	return dataset.ConvertJSON(r, cfg)
}

// NewPlacer constructs a standalone placement strategy over k shards for
// dataset d, resolved through the open registry. Unknown names return an
// error wrapping ErrUnknownStrategy (this call used to panic).
//
// Deprecated: prefer an Engine with WithStrategy and WithDataset; the
// Engine adds input validation, streaming statistics, and live metrics.
func NewPlacer(s Strategy, k int, d *Dataset) (Placer, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: NewPlacer: nil dataset", ErrBadOption)
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: NewPlacer: k = %d", ErrBadShard, k)
	}
	return registry.NewStrategy(string(s), registry.StrategyContext{
		K: k, N: d.Len(),
		OutCounts: func(v txgraph.Node) int { return d.NumOutputs(int(v)) },
	})
}

// NewOptChainPlacer builds the full Temporal Fitness placer with a live
// latency model fed by the given telemetry (nil telemetry degenerates to
// pure T2S placement).
//
// Deprecated: prefer an Engine with WithStrategy("OptChain") and
// WithTelemetry.
func NewOptChainPlacer(k int, d *Dataset, tel Telemetry) (Placer, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: NewOptChainPlacer: nil dataset", ErrBadOption)
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: NewOptChainPlacer: k = %d", ErrBadShard, k)
	}
	cfg := core.OptChainConfig{K: k, N: d.Len()}
	if tel != nil {
		cfg.Latency = core.FastL2S{Tel: tel}
	}
	p := core.NewOptChain(cfg)
	p.Scores().SetOutCounts(func(v txgraph.Node) int { return d.NumOutputs(int(v)) })
	return p, nil
}

// StaticTelemetry is a fixed-rate Telemetry for experimentation: Comm[i]
// and Verify[i] are shard i's λc and λv in 1/seconds.
type StaticTelemetry = core.StaticTelemetry

// PartitionTaN runs the Metis-style multilevel k-way partitioner over the
// dataset's TaN network and returns one shard id per transaction.
func PartitionTaN(d *Dataset, k int, seed int64) ([]int32, error) {
	g, err := d.BuildGraph()
	if err != nil {
		return nil, err
	}
	xadj, adj := g.UndirectedCSR()
	return metis.PartitionKWay(xadj, adj, k, &metis.Options{Seed: seed})
}

// NewMetisPlacer replays an offline partition as a placement strategy. Out
// of range partition entries return ErrBadShard (they used to panic deep in
// the stream).
func NewMetisPlacer(k int, part []int32) (Placer, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: NewMetisPlacer: k = %d", ErrBadShard, k)
	}
	for i, s := range part {
		if s < 0 || int(s) >= k {
			return nil, fmt.Errorf("%w: partition[%d] = %d not in [0, %d)", ErrBadShard, i, s, k)
		}
	}
	return placement.NewMetisReplay(k, part), nil
}

// NewAssignment creates an empty placement record over k shards with a
// capacity hint of n transactions — the bookkeeping a custom strategy
// registered via RegisterStrategy embeds to satisfy the Placer interface.
func NewAssignment(k, n int) *Assignment { return placement.NewAssignment(k, n) }

// CumulativeFraction converts a degree histogram into cumulative fractions
// (Fig. 2's P(deg < d) curves).
func CumulativeFraction(hist []int64) []float64 { return txgraph.CumulativeFraction(hist) }

// CrossShardFraction streams the whole dataset through the placer and
// returns the fraction of cross-shard transactions (§IV-A definition:
// a transaction is cross-shard iff some input lives outside its shard).
func CrossShardFraction(d *Dataset, p Placer) float64 {
	cc := placement.CrossCounter{}
	var buf []txgraph.Node
	for i := 0; i < d.Len(); i++ {
		buf = d.InputTxNodes(i, buf)
		s := p.Place(txgraph.Node(i), buf)
		cc.Observe(p.Assignment(), buf, s)
	}
	return cc.Fraction()
}

// Simulate runs one end-to-end sharded-blockchain simulation.
//
// Deprecated: prefer Engine.Run, which adds cancellation, progress
// callbacks, and live metrics; Simulate remains as a thin wrapper.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// SimulateContext runs one simulation under a context: cancellation or
// deadline expiry aborts the run promptly with the context's error.
func SimulateContext(ctx context.Context, cfg SimConfig) (*SimResult, error) {
	return sim.RunContext(ctx, cfg)
}

// NewBenchHarness prepares the experiment harness that regenerates the
// paper's tables and figures; see ExperimentNames and RunExperiment. The
// harness wraps the public optchain/experiment Runner — programmatic
// consumers that want sweeps-as-data (streamed typed rows, pluggable
// reporters) should use that package directly.
func NewBenchHarness(p BenchParams) *bench.Harness { return bench.NewHarness(p) }

// ExperimentNames lists the available experiments (table1, fig3, …).
func ExperimentNames() []string { return bench.Names() }

// RunExperiment executes one named experiment, writing its report to w.
// Cancelling ctx stops the run mid-grid; rows already rendered stay on w.
func RunExperiment(ctx context.Context, h *bench.Harness, name string, w io.Writer) error {
	fn, ok := bench.Experiments[name]
	if !ok {
		return fmt.Errorf("%w: %q (have %v)", ErrUnknownExperiment, name, bench.Names())
	}
	return fn(ctx, h, w)
}

// RunAllExperiments executes every experiment in canonical order under ctx.
func RunAllExperiments(ctx context.Context, h *bench.Harness, w io.Writer) error {
	return bench.RunAll(ctx, h, w)
}

// WriteBenchBaseline measures the hot-path micro-benchmarks (T2S score
// maintenance, full placement, the event kernel) and one quick end-to-end
// simulation per strategy × protocol, then writes the machine-readable
// JSON report tracked as BENCH_baseline.json (`make bench-json`). See
// PERFORMANCE.md for the schema and how the numbers are used. Cancelling
// ctx aborts between cells; no partial record is written.
func WriteBenchBaseline(ctx context.Context, h *bench.Harness, w io.Writer) error {
	return bench.WriteBaselineJSON(ctx, h, w)
}
