package optchain

import (
	"fmt"
	"io"

	"optchain/internal/bench"
	"optchain/internal/core"
	"optchain/internal/dataset"
	"optchain/internal/metis"
	"optchain/internal/placement"
	"optchain/internal/sim"
	"optchain/internal/txgraph"
)

// Re-exported types. These aliases are the public names of the library's
// main objects; the implementation lives in internal packages.
type (
	// Dataset is a generated or loaded Bitcoin-like transaction stream.
	Dataset = dataset.Dataset
	// DatasetConfig parameterizes synthetic stream generation.
	DatasetConfig = dataset.Config
	// Placer decides which shard each transaction is submitted to.
	Placer = placement.Placer
	// Assignment records placement decisions.
	Assignment = placement.Assignment
	// SimConfig parameterizes an end-to-end simulation.
	SimConfig = sim.Config
	// SimResult carries a simulation's metrics.
	SimResult = sim.Result
	// TaNGraph is the Transactions-as-Nodes network.
	TaNGraph = txgraph.Graph
	// BenchParams scales the experiment harness.
	BenchParams = bench.Params
	// Telemetry supplies client-observable shard load estimates to the
	// L2S model.
	Telemetry = core.Telemetry
)

// Strategy names a transaction placement algorithm.
type Strategy = sim.PlacerKind

// The placement strategies from the paper's evaluation.
const (
	// StrategyOptChain is the full Temporal Fitness algorithm (Alg. 1).
	StrategyOptChain = sim.PlacerOptChain
	// StrategyT2S is the capacity-bounded T2S-only variant (§IV-B).
	StrategyT2S = sim.PlacerT2S
	// StrategyRandom is OmniLedger's hash-based placement.
	StrategyRandom = sim.PlacerRandom
	// StrategyGreedy is the one-hop input-coverage heuristic.
	StrategyGreedy = sim.PlacerGreedy
	// StrategyMetis replays an offline Metis k-way partition.
	StrategyMetis = sim.PlacerMetis
)

// Protocol names a cross-shard commit backend.
type Protocol = sim.ProtocolKind

// The supported backends.
const (
	// ProtocolOmniLedger is the client-driven atomic commit of §III-A.
	ProtocolOmniLedger = sim.ProtoOmniLedger
	// ProtocolRapidChain is the committee-driven yanking mechanism.
	ProtocolRapidChain = sim.ProtoRapidChain
)

// DatasetDefaults returns the generator calibration used throughout the
// benchmarks (TaN degree statistics matching the paper's Fig. 2).
func DatasetDefaults() DatasetConfig { return dataset.DefaultConfig() }

// GenerateDataset produces a synthetic Bitcoin-like transaction stream.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// LoadDataset decodes a stream written by (*Dataset).Encode.
func LoadDataset(r io.Reader) (*Dataset, error) { return dataset.Decode(r) }

// NewPlacer constructs a placement strategy over k shards for dataset d.
// StrategyMetis requires a partition; use NewMetisPlacer instead.
func NewPlacer(s Strategy, k int, d *Dataset) Placer {
	n := d.Len()
	outCounts := func(v txgraph.Node) int { return d.NumOutputs(int(v)) }
	switch s {
	case StrategyRandom:
		return placement.NewRandom(k, n)
	case StrategyGreedy:
		return placement.NewGreedy(k, n, core.DefaultCapacityEps)
	case StrategyT2S:
		p := core.NewT2SPlacer(k, n, core.DefaultAlpha, core.DefaultCapacityEps)
		p.Scores().SetOutCounts(outCounts)
		return p
	case StrategyOptChain:
		p := core.NewOptChain(core.OptChainConfig{K: k, N: n})
		p.Scores().SetOutCounts(outCounts)
		return p
	default:
		panic(fmt.Sprintf("optchain: unknown strategy %q", s))
	}
}

// NewOptChainPlacer builds the full Temporal Fitness placer with a live
// latency model fed by the given telemetry (nil telemetry degenerates to
// pure T2S placement).
func NewOptChainPlacer(k int, d *Dataset, tel Telemetry) Placer {
	cfg := core.OptChainConfig{K: k, N: d.Len()}
	if tel != nil {
		cfg.Latency = core.FastL2S{Tel: tel}
	}
	p := core.NewOptChain(cfg)
	p.Scores().SetOutCounts(func(v txgraph.Node) int { return d.NumOutputs(int(v)) })
	return p
}

// StaticTelemetry is a fixed-rate Telemetry for experimentation: Comm[i]
// and Verify[i] are shard i's λc and λv in 1/seconds.
type StaticTelemetry = core.StaticTelemetry

// PartitionTaN runs the Metis-style multilevel k-way partitioner over the
// dataset's TaN network and returns one shard id per transaction.
func PartitionTaN(d *Dataset, k int, seed int64) ([]int32, error) {
	g, err := d.BuildGraph()
	if err != nil {
		return nil, err
	}
	xadj, adj := g.UndirectedCSR()
	return metis.PartitionKWay(xadj, adj, k, &metis.Options{Seed: seed})
}

// NewMetisPlacer replays an offline partition as a placement strategy.
func NewMetisPlacer(k int, part []int32) Placer { return placement.NewMetisReplay(k, part) }

// CrossShardFraction streams the whole dataset through the placer and
// returns the fraction of cross-shard transactions (§IV-A definition:
// a transaction is cross-shard iff some input lives outside its shard).
func CrossShardFraction(d *Dataset, p Placer) float64 {
	cc := placement.CrossCounter{}
	var buf []txgraph.Node
	for i := 0; i < d.Len(); i++ {
		buf = d.InputTxNodes(i, buf)
		s := p.Place(txgraph.Node(i), buf)
		cc.Observe(p.Assignment(), buf, s)
	}
	return cc.Fraction()
}

// Simulate runs one end-to-end sharded-blockchain simulation.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// NewBenchHarness prepares the experiment harness that regenerates the
// paper's tables and figures; see ExperimentNames and RunExperiment.
func NewBenchHarness(p BenchParams) *bench.Harness { return bench.NewHarness(p) }

// ExperimentNames lists the available experiments (table1, fig3, …).
func ExperimentNames() []string { return bench.Names() }

// RunExperiment executes one named experiment, writing its report to w.
func RunExperiment(h *bench.Harness, name string, w io.Writer) error {
	fn, ok := bench.Experiments[name]
	if !ok {
		return fmt.Errorf("optchain: unknown experiment %q (have %v)", name, bench.Names())
	}
	return fn(h, w)
}

// RunAllExperiments executes every experiment in canonical order.
func RunAllExperiments(h *bench.Harness, w io.Writer) error { return bench.RunAll(h, w) }
