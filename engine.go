package optchain

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"strings"
	"sync"
	"time"

	"optchain/internal/placement"
	"optchain/internal/registry"
	"optchain/internal/sim"
	"optchain/internal/txgraph"
	"optchain/internal/workload"
)

// Typed errors returned by the Engine API. Match them with errors.Is; none
// of the exported constructors or methods panic.
var (
	// ErrUnknownStrategy reports a strategy name with no registered factory.
	ErrUnknownStrategy = registry.ErrUnknownStrategy
	// ErrUnknownProtocol reports a protocol name with no registered factory.
	ErrUnknownProtocol = registry.ErrUnknownProtocol
	// ErrUnknownWorkload reports a workload scenario name with no
	// registered factory.
	ErrUnknownWorkload = workload.ErrUnknownWorkload
	// ErrBadShard reports a shard index outside [0, K).
	ErrBadShard = errors.New("optchain: shard index out of range")
	// ErrBadInput reports a stream transaction whose input refers to a
	// transaction that has not been placed yet (or to itself).
	ErrBadInput = errors.New("optchain: input refers to an unplaced transaction")
	// ErrBadOption reports an invalid functional-option value.
	ErrBadOption = errors.New("optchain: invalid option")
	// ErrRunning reports a second concurrent Run on the same Engine.
	ErrRunning = errors.New("optchain: engine run already in progress")
	// ErrUnknownExperiment reports an experiment name RunExperiment does not
	// know.
	ErrUnknownExperiment = errors.New("optchain: unknown experiment")
)

// MetricsSnapshot is a point-in-time view of an Engine's progress: the
// virtual clock, issue/commit counters, retries, the deepest shard queue,
// and the running cross-shard fraction. During Run it is refreshed on every
// progress tick; in streaming mode (Place/PlaceStream) the Issued counter
// tracks placed transactions.
type MetricsSnapshot = sim.Snapshot

// StreamTx is one transaction of an online stream: the stream indexes of
// the transactions whose outputs it spends, and the number of outputs it
// creates. Inputs may repeat (one transaction spending several outputs of
// the same parent); the Engine deduplicates them. Outputs of 0 means
// unknown — the T2S score then falls back to the spenders-seen-so-far
// divisor.
type StreamTx struct {
	Inputs  []int
	Outputs int
}

// PlacementStats summarizes the stream placed through an Engine so far.
type PlacementStats struct {
	// Placed is the number of transactions placed.
	Placed int
	// Cross counts cross-shard transactions; CrossFraction = Cross/Placed.
	Cross         int64
	CrossFraction float64
	// ShardCounts is the per-shard transaction tally.
	ShardCounts []int64
	// ParallelInputRefs counts input references seen by parallel placement
	// epochs (WithParallelism); 0 on the serial path.
	ParallelInputRefs int64
	// CrossChunkRefs counts the subset of ParallelInputRefs that pointed at
	// a transaction being placed concurrently by another chunk of the same
	// epoch. Those references contribute no score mass, so this is the
	// engine's measured decision-drift source; it is always 0 at
	// parallelism 1, where decisions are bit-identical to serial placement.
	CrossChunkRefs int64
}

// Engine is the package's main entry point: an online transaction-placement
// and simulation engine over a fixed shard count, a named placement
// strategy, and a named commit protocol, both resolved through the open
// registry (see RegisterStrategy / RegisterProtocol).
//
// Construct with New and functional options. Engines serve two modes:
//
//   - Streaming placement: Place / PlaceStream route transactions one at a
//     time via the paper's online model (§IV) — the deployment surface a
//     wallet uses.
//   - Full simulation: Run drives the end-to-end sharded-blockchain
//     evaluation (§V) with context cancellation, progress callbacks, and
//     live MetricsSnapshot reads from other goroutines.
//
// Methods are safe for concurrent use.
type Engine struct {
	strategy      string
	protocol      string
	shards        int
	dataset       *Dataset
	workloadName  string
	workloadKnobs map[string]float64
	txs           int
	rate          float64
	seed          int64
	validators    int
	clients       int
	tel           Telemetry
	alpha         float64
	l2sWeight     float64
	exactL2S      bool
	validateUTXO  bool
	maxSimTime    time.Duration
	metisPart     []int32
	streamCap     int
	progress      func(MetricsSnapshot)
	progressEvery time.Duration
	netCfg        NetConfig
	shardCfg      ShardConfig
	parallel      int // epoch worker count; 0 = serial placement
	batch         int // PlaceStream/PlaceWorkload chunk size; 0 = DefaultBatchSize

	mu         sync.Mutex
	placer     Placer                 // guarded by mu
	placerN    int                    // guarded by mu — capacity hint the placer was built with
	placed     int                    // guarded by mu
	outs       []int32                // guarded by mu
	cross      placement.CrossCounter // guarded by mu
	inputBuf   []txgraph.Node         // guarded by mu
	snap       MetricsSnapshot        // guarded by mu
	running    bool                   // guarded by mu
	fan        *placement.Fan         // guarded by mu
	epoch      placement.EpochStats   // guarded by mu
	batchNodes []txgraph.Node         // guarded by mu
	batchSpans [][2]int               // guarded by mu
}

// Option configures an Engine under construction. Options validate eagerly:
// New returns the first option error instead of deferring it to Run.
type Option func(*Engine) error

// WithShards sets the number of shards (required to be >= 1; default 16,
// the paper's largest configuration).
func WithShards(k int) Option {
	return func(e *Engine) error {
		if k < 1 {
			return fmt.Errorf("%w: WithShards(%d): need at least 1 shard", ErrBadOption, k)
		}
		e.shards = k
		return nil
	}
}

// WithStrategy selects the placement strategy by registry name (default
// "OptChain"). Names are case-insensitive; unknown names fail New with
// ErrUnknownStrategy.
func WithStrategy(name string) Option {
	return func(e *Engine) error {
		if strings.TrimSpace(name) == "" {
			return fmt.Errorf("%w: WithStrategy: empty name", ErrBadOption)
		}
		e.strategy = name
		return nil
	}
}

// WithProtocol selects the cross-shard commit protocol by registry name
// (default "omniledger"). Unknown names fail New with ErrUnknownProtocol.
func WithProtocol(name string) Option {
	return func(e *Engine) error {
		if strings.TrimSpace(name) == "" {
			return fmt.Errorf("%w: WithProtocol: empty name", ErrBadOption)
		}
		e.protocol = name
		return nil
	}
}

// WithDataset supplies the transaction stream for Run and for
// dataset-backed streaming. Run without a dataset generates a default
// synthetic stream (DatasetDefaults) on first use.
func WithDataset(d *Dataset) Option {
	return func(e *Engine) error {
		if d == nil {
			return fmt.Errorf("%w: WithDataset(nil)", ErrBadOption)
		}
		e.dataset = d
		return nil
	}
}

// WithWorkload selects a workload scenario (see Workloads) as the engine's
// transaction stream, with optional generator-specific knobs — instead of a
// materialized dataset. The name may be a full workload spec, passed
// unchanged, so composite scenarios work everywhere the Engine does (the
// grammar is documented in SCENARIOS.md):
//
//	optchain.WithWorkload("hotspot", map[string]float64{"exp": 1.5})
//	optchain.WithWorkload("mix:bitcoin=0.7,hotspot=0.2,adversarial=0.1", nil)
//	optchain.WithWorkload("replay:trace.tan,mod=(burst:boost=4)", nil)
//
// Scenario runs are streaming: Run pulls one transaction per issue event
// and PlaceWorkload batches through PlaceBatch, so million-user-scale
// streams never pre-build a Dataset. WithTxs sizes the stream (default
// 20000); feedback-aware scenarios (adversarial, mixes containing one)
// receive every placement decision back. WithWorkload and WithDataset are
// mutually exclusive.
func WithWorkload(name string, knobs map[string]float64) Option {
	return func(e *Engine) error {
		if strings.TrimSpace(name) == "" {
			return fmt.Errorf("%w: WithWorkload: empty name", ErrBadOption)
		}
		e.workloadName = name
		if len(knobs) > 0 {
			e.workloadKnobs = make(map[string]float64, len(knobs))
			for k, v := range knobs {
				e.workloadKnobs[k] = v
			}
		} else {
			e.workloadKnobs = nil
		}
		return nil
	}
}

// WithTxs limits Run to the first n transactions of the dataset (0 = the
// whole stream). Without a dataset it also sizes the generated one.
func WithTxs(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("%w: WithTxs(%d)", ErrBadOption, n)
		}
		e.txs = n
		return nil
	}
}

// WithRate sets the offered load in transactions/second (default 2000, the
// paper's low end).
func WithRate(tps float64) Option {
	return func(e *Engine) error {
		if tps <= 0 {
			return fmt.Errorf("%w: WithRate(%v): rate must be positive", ErrBadOption, tps)
		}
		e.rate = tps
		return nil
	}
}

// WithSeed sets the seed driving dataset generation, node placement, and
// client jitter (default 1).
func WithSeed(seed int64) Option {
	return func(e *Engine) error { e.seed = seed; return nil }
}

// WithValidators sets the committee size per shard (default 400, the
// paper's).
func WithValidators(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("%w: WithValidators(%d)", ErrBadOption, n)
		}
		e.validators = n
		return nil
	}
}

// WithClients sets the number of client nodes issuing transactions during
// Run (default 32).
func WithClients(n int) Option {
	return func(e *Engine) error {
		if n < 1 {
			return fmt.Errorf("%w: WithClients(%d)", ErrBadOption, n)
		}
		e.clients = n
		return nil
	}
}

// WithTelemetry supplies client-observable shard load estimates to the L2S
// model for streaming placement (Place / PlaceStream). Run ignores it: the
// full simulation feeds the placer live telemetry from the simulated
// network.
func WithTelemetry(tel Telemetry) Option {
	return func(e *Engine) error { e.tel = tel; return nil }
}

// WithAlpha sets the PageRank damping factor (0 < alpha <= 1; default 0.5).
func WithAlpha(alpha float64) Option {
	return func(e *Engine) error {
		if alpha <= 0 || alpha > 1 {
			return fmt.Errorf("%w: WithAlpha(%v): need 0 < alpha <= 1", ErrBadOption, alpha)
		}
		e.alpha = alpha
		return nil
	}
}

// WithL2SWeight sets the L2S coefficient in the Temporal Fitness score
// (default 0.01).
func WithL2SWeight(w float64) Option {
	return func(e *Engine) error {
		if w < 0 {
			return fmt.Errorf("%w: WithL2SWeight(%v)", ErrBadOption, w)
		}
		e.l2sWeight = w
		return nil
	}
}

// WithExactL2S selects exact quadrature over the fast closed form for the
// L2S estimate.
func WithExactL2S(on bool) Option {
	return func(e *Engine) error { e.exactL2S = on; return nil }
}

// WithUTXOValidation enables strict in-order ledger validation during Run
// (see SimConfig.ValidateUTXO).
func WithUTXOValidation(on bool) Option {
	return func(e *Engine) error { e.validateUTXO = on; return nil }
}

// WithMaxSimTime caps the virtual duration of Run; a run whose backlog
// never drains is reported with its partial commit count.
func WithMaxSimTime(d time.Duration) Option {
	return func(e *Engine) error {
		if d <= 0 {
			return fmt.Errorf("%w: WithMaxSimTime(%v)", ErrBadOption, d)
		}
		e.maxSimTime = d
		return nil
	}
}

// WithMetisPartition supplies the offline partition the "Metis" strategy
// replays. Run computes one automatically when the strategy is Metis and no
// partition was given.
func WithMetisPartition(part []int32) Option {
	return func(e *Engine) error {
		if len(part) == 0 {
			return fmt.Errorf("%w: WithMetisPartition: empty partition", ErrBadOption)
		}
		for i, s := range part {
			if s < 0 {
				return fmt.Errorf("%w: partition[%d] = %d", ErrBadShard, i, s)
			}
		}
		e.metisPart = part
		return nil
	}
}

// WithStreamCapacity hints the expected stream length for streaming-mode
// placement without a dataset (capacity-bounded strategies size their
// per-shard budget from it).
func WithStreamCapacity(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("%w: WithStreamCapacity(%d)", ErrBadOption, n)
		}
		e.streamCap = n
		return nil
	}
}

// WithProgress installs a callback receiving a MetricsSnapshot every
// progress tick during Run, and once more when the run finishes. The
// callback runs on the simulation goroutine.
func WithProgress(fn func(MetricsSnapshot)) Option {
	return func(e *Engine) error { e.progress = fn; return nil }
}

// WithProgressEvery sets the progress cadence in virtual time (default 5s).
// It refines WithProgress; using it without a WithProgress callback fails
// New with ErrBadOption.
func WithProgressEvery(d time.Duration) Option {
	return func(e *Engine) error {
		if d <= 0 {
			return fmt.Errorf("%w: WithProgressEvery(%v)", ErrBadOption, d)
		}
		e.progressEvery = d
		return nil
	}
}

// WithNetwork overrides the simulated network constants for Run.
func WithNetwork(cfg NetConfig) Option {
	return func(e *Engine) error { e.netCfg = cfg; return nil }
}

// WithShardTuning overrides the committee constants (block size, block
// wait, consensus costs) for Run.
func WithShardTuning(cfg ShardConfig) Option {
	return func(e *Engine) error { e.shardCfg = cfg; return nil }
}

// WithParallelism routes PlaceBatch (and therefore PlaceStream and
// PlaceWorkload) through parallel placement epochs with n workers: each
// batch is split into contiguous chunks placed concurrently against a
// frozen snapshot of the strategy state, then merged deterministically in
// chunk order. Output order and engine semantics are unchanged; decision
// quality can drift because a chunk cannot see decisions made concurrently
// by earlier chunks of the same epoch — the drift source is measured and
// reported as PlacementStats.CrossChunkRefs, and with n == 1 decisions are
// bit-identical to the serial path.
//
// n == 0 resolves to runtime.GOMAXPROCS(0); n < 0 fails New with
// ErrBadOption. Without this option placement stays serial. Strategies
// that cannot partition their state (Metis replay, custom registrations
// without epoch support) fall back to the serial path transparently.
func WithParallelism(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("%w: WithParallelism(%d)", ErrBadOption, n)
		}
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		e.parallel = n
		return nil
	}
}

// WithBatchSize sets how many stream transactions PlaceStream and
// PlaceWorkload group per PlaceBatch call (default DefaultBatchSize).
// Larger batches amortize the per-batch lock and snapshot refresh and give
// parallel epochs longer chunks; smaller batches keep progress snapshots
// fresh and, under WithParallelism, bound how much concurrent state a
// chunk cannot see. n <= 0 fails New with ErrBadOption.
func WithBatchSize(n int) Option {
	return func(e *Engine) error {
		if n <= 0 {
			return fmt.Errorf("%w: WithBatchSize(%d): batch size must be positive", ErrBadOption, n)
		}
		e.batch = n
		return nil
	}
}

// New builds an Engine, validating every option eagerly: the first invalid
// option, unknown strategy, or unknown protocol is returned as an error —
// nothing panics and nothing is deferred to Run.
func New(opts ...Option) (*Engine, error) {
	e := &Engine{
		strategy: "OptChain",
		protocol: "omniledger",
		shards:   16,
		rate:     2000,
		seed:     1,
	}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	if !registry.HasStrategy(e.strategy) {
		return nil, fmt.Errorf("%w %q (have %s)",
			ErrUnknownStrategy, e.strategy, strings.Join(Strategies(), ", "))
	}
	if !registry.HasProtocol(e.protocol) {
		return nil, fmt.Errorf("%w %q (have %s)",
			ErrUnknownProtocol, e.protocol, strings.Join(Protocols(), ", "))
	}
	if e.txs != 0 && e.dataset != nil && e.txs > e.dataset.Len() {
		return nil, fmt.Errorf("%w: WithTxs(%d) exceeds dataset length %d",
			ErrBadOption, e.txs, e.dataset.Len())
	}
	if e.progressEvery != 0 && e.progress == nil {
		// A cadence with no callback would be silently inert; fail loudly so
		// the missing WithProgress is caught at construction.
		return nil, fmt.Errorf("%w: WithProgressEvery(%v) without WithProgress",
			ErrBadOption, e.progressEvery)
	}
	if e.workloadName != "" {
		if e.dataset != nil {
			return nil, fmt.Errorf("%w: WithWorkload and WithDataset are mutually exclusive", ErrBadOption)
		}
		// Eager validation: building a throwaway source surfaces unknown
		// scenario names and bad knobs at New instead of at Run. The probe
		// is closed, not drained, so replay sources release their trace
		// file immediately.
		src, err := e.newWorkloadSource(1)
		if err != nil {
			return nil, err
		}
		workload.Close(src)
	}
	// Partition entries are range-checked here rather than in the option:
	// WithShards may legitimately apply after WithMetisPartition.
	for i, s := range e.metisPart {
		if int(s) >= e.shards {
			return nil, fmt.Errorf("%w: partition[%d] = %d not in [0, %d)",
				ErrBadShard, i, s, e.shards)
		}
	}
	return e, nil
}

// Strategy returns the engine's placement strategy name.
func (e *Engine) Strategy() string { return e.strategy }

// Protocol returns the engine's commit protocol name.
func (e *Engine) Protocol() string { return e.protocol }

// Shards returns the engine's shard count.
func (e *Engine) Shards() int { return e.shards }

// ensurePlacerLocked lazily builds the streaming-mode placer.
//
//optchain:locked e.mu held by Place/PlaceBatch; the outCounts closure runs under the same lock when the placer is later invoked.
func (e *Engine) ensurePlacerLocked() error {
	if e.placer != nil {
		return nil
	}
	n := e.streamCap
	if n == 0 && e.dataset != nil {
		n = e.dataset.Len()
	}
	outCounts := func(v txgraph.Node) int { return int(e.outs[v]) }
	if e.dataset != nil {
		d := e.dataset
		outCounts = func(v txgraph.Node) int {
			if int(v) < d.Len() {
				return d.NumOutputs(int(v))
			}
			return 0
		}
	}
	p, err := registry.NewStrategy(e.strategy, registry.StrategyContext{
		K:         e.shards,
		N:         n,
		OutCounts: outCounts,
		Alpha:     e.alpha,
		Weight:    e.l2sWeight,
		Telemetry: e.tel,
		ExactL2S:  e.exactL2S,
		MetisPart: e.metisPart,
	})
	if err != nil {
		return err
	}
	e.placer = p
	e.placerN = n
	return nil
}

// Place routes one stream transaction to a shard via the engine's strategy
// — the paper's online placement model, one decision per arrival in stream
// order. It returns the chosen shard in [0, Shards()).
func (e *Engine) Place(tx StreamTx) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.ensurePlacerLocked(); err != nil {
		return -1, err
	}
	s, err := e.placeOneLocked(tx)
	if err != nil {
		return -1, err
	}
	e.refreshStreamSnapshotLocked()
	return s, nil
}

// PlaceBatch routes a slice of stream transactions in order, exactly as the
// equivalent sequence of Place calls would (same strategy state, same
// decisions), but pays the lock, placer lookup, and snapshot refresh once
// per batch instead of once per transaction. Results are appended to
// shards[:0] and returned, so a caller-owned slice is reused across
// batches; pass nil to let PlaceBatch allocate one.
//
// On error, the returned slice covers the transactions placed before the
// failure (engine state keeps those placements, as with Place); the error
// names the failing transaction by its absolute stream position, and
// len(result) gives its offset within the batch.
//
//optchain:hotpath the per-stream placement loop: one iteration per transaction, no steady-state allocation beyond amortized slice growth.
func (e *Engine) PlaceBatch(txs []StreamTx, shards []int) ([]int, error) {
	if shards == nil {
		shards = make([]int, 0, len(txs))
	} else {
		shards = shards[:0]
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.ensurePlacerLocked(); err != nil {
		return shards, err
	}
	if e.parallel > 0 && len(txs) > 0 {
		if sh, ok := e.placer.(placement.Sharder); ok {
			return e.placeBatchEpochLocked(sh, txs, shards)
		}
	}
	for i := range txs {
		s, err := e.placeOneLocked(txs[i])
		if err != nil {
			// The error already names the failing transaction by its
			// absolute stream position; len(shards) gives the batch offset.
			e.refreshStreamSnapshotLocked()
			return shards, err
		}
		shards = append(shards, s)
	}
	e.refreshStreamSnapshotLocked()
	return shards, nil
}

// placeBatchEpochLocked places one batch as a parallel epoch (see
// internal/placement): inputs are validated and deduplicated into a flat
// arena up front, the batch's output counts are published before fan-out
// (workers read them through the outCounts closure), the epoch fans the
// chunks across the configured workers, and after the deterministic join
// the engine replays cross-shard accounting in stream order. On an invalid
// transaction the valid prefix still places — the serial partial-failure
// contract — and the error names the failing position. A panicking
// strategy aborts before the join, so the shared state stays at the
// pre-batch prefix.
//
//optchain:locked e.mu held by PlaceBatch.
func (e *Engine) placeBatchEpochLocked(sh placement.Sharder, txs []StreamTx, shards []int) ([]int, error) {
	base := e.placed
	n := len(txs)
	var badErr error
	e.batchNodes = e.batchNodes[:0]
	e.batchSpans = e.batchSpans[:0]
scan:
	for i := range txs {
		u := base + i
		off := len(e.batchNodes)
		for _, in := range txs[i].Inputs {
			if in < 0 || in >= u {
				badErr = fmt.Errorf("%w: transaction %d spends %d", ErrBadInput, u, in)
				n = i
				break scan
			}
			v := txgraph.Node(in)
			dup := false
			for _, seen := range e.batchNodes[off:] {
				if seen == v {
					dup = true
					break
				}
			}
			if !dup {
				e.batchNodes = append(e.batchNodes, v)
			}
		}
		e.batchSpans = append(e.batchSpans, [2]int{off, len(e.batchNodes)})
	}
	if n > 0 {
		for i := 0; i < n; i++ {
			e.outs = append(e.outs, int32(txs[i].Outputs))
		}
		if e.fan == nil || e.fan.Workers() != e.parallel {
			e.fan = placement.NewFan(e.parallel)
		}
		nodes, spans := e.batchNodes, e.batchSpans
		stats, err := e.epochGuarded(sh, n, func(u int, buf []txgraph.Node) []txgraph.Node {
			sp := spans[u-base]
			return append(buf, nodes[sp[0]:sp[1]]...)
		})
		if err != nil {
			e.outs = e.outs[:base]
			e.refreshStreamSnapshotLocked()
			return shards, err
		}
		e.epoch.Add(stats)
		asn := e.placer.Assignment()
		for i := 0; i < n; i++ {
			sp := e.batchSpans[i]
			s := asn.ShardOf(txgraph.Node(base + i))
			e.cross.Observe(asn, e.batchNodes[sp[0]:sp[1]], s)
			shards = append(shards, s)
		}
		e.placed += n
	}
	e.refreshStreamSnapshotLocked()
	return shards, badErr
}

// epochGuarded runs one placement epoch, converting a panicking strategy
// into an error (mirroring placeGuarded). A worker panic surfaces before
// the join, so no partial epoch ever reaches the shared state.
//
//optchain:locked e.mu held by placeBatchEpochLocked.
func (e *Engine) epochGuarded(sh placement.Sharder, n int, fn placement.InputsFunc) (stats placement.EpochStats, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("optchain: strategy %q failed during a parallel epoch: %v", e.strategy, p)
		}
	}()
	return e.fan.PlaceEpoch(sh, n, fn), nil
}

// placeOneLocked validates, deduplicates, and places one transaction.
// The placer is initialized.
//
//optchain:locked e.mu held by Place/PlaceBatch.
func (e *Engine) placeOneLocked(tx StreamTx) (int, error) {
	u := e.placed
	e.inputBuf = e.inputBuf[:0]
	for _, in := range tx.Inputs {
		if in < 0 || in >= u {
			return -1, fmt.Errorf("%w: transaction %d spends %d", ErrBadInput, u, in)
		}
		v := txgraph.Node(in)
		dup := false
		for _, seen := range e.inputBuf {
			if seen == v {
				dup = true
				break
			}
		}
		if !dup {
			e.inputBuf = append(e.inputBuf, v)
		}
	}
	e.outs = append(e.outs, int32(tx.Outputs))
	s, err := e.placeGuarded(txgraph.Node(u))
	if err != nil {
		e.outs = e.outs[:u]
		return -1, err
	}
	if s < 0 || s >= e.shards {
		e.outs = e.outs[:u]
		return -1, fmt.Errorf("%w: strategy %q chose shard %d of %d for transaction %d",
			ErrBadShard, e.strategy, s, e.shards, u)
	}
	e.placed++
	e.cross.Observe(e.placer.Assignment(), e.inputBuf, s)
	return s, nil
}

// refreshStreamSnapshotLocked publishes the streaming-mode progress
// counters.
//
//optchain:locked e.mu held by Place/PlaceBatch.
func (e *Engine) refreshStreamSnapshotLocked() {
	e.snap = MetricsSnapshot{
		Issued:        e.placed,
		Total:         e.placed,
		CrossFraction: e.cross.Fraction(),
	}
}

// placeGuarded invokes the strategy, converting any panic (misbehaving
// custom strategies, exhausted Metis partitions) into an error so no panic
// escapes the exported API.
//
//optchain:locked e.mu held by placeOneLocked's callers.
func (e *Engine) placeGuarded(u txgraph.Node) (s int, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("optchain: strategy %q failed on transaction %d: %v", e.strategy, u, p)
		}
	}()
	return e.placer.Place(u, e.inputBuf), nil
}

// DefaultBatchSize is how many stream transactions PlaceStream and
// PlaceWorkload group per PlaceBatch call when WithBatchSize is not set —
// large enough to amortize the per-batch lock and snapshot refresh and to
// give parallel epochs full-length chunks (see the batch-size sweep in the
// parallel_place benchmark), small enough to keep progress fresh.
const DefaultBatchSize = 1024

// batchSize resolves the configured chunk size (immutable after New).
func (e *Engine) batchSize() int {
	if e.batch > 0 {
		return e.batch
	}
	return DefaultBatchSize
}

// PlaceStream drains an online transaction stream through the engine and
// returns the cumulative placement statistics. Transactions are grouped
// into PlaceBatch chunks internally; decisions are identical to calling
// Place once per transaction. On error the stats cover the transactions
// placed before the failure.
func (e *Engine) PlaceStream(txs iter.Seq[StreamTx]) (PlacementStats, error) {
	chunk := e.batchSize()
	buf := make([]StreamTx, 0, chunk)
	var shards []int
	flush := func() error {
		var err error
		shards, err = e.PlaceBatch(buf, shards)
		buf = buf[:0]
		return err
	}
	for tx := range txs {
		buf = append(buf, tx)
		if len(buf) == chunk {
			if err := flush(); err != nil {
				return e.Stats(), err
			}
		}
	}
	if len(buf) > 0 {
		if err := flush(); err != nil {
			return e.Stats(), err
		}
	}
	return e.Stats(), nil
}

// newWorkloadSource builds the engine's configured scenario for an n-long
// stream.
func (e *Engine) newWorkloadSource(n int) (workload.Source, error) {
	return workload.New(e.workloadName, workload.Params{
		N:      n,
		Seed:   e.seed,
		Shards: e.shards,
		Knobs:  e.workloadKnobs,
	})
}

// PlaceWorkload streams n transactions (0 takes WithTxs, default 20000) of
// the engine's configured workload scenario (WithWorkload) through
// PlaceBatch and returns the cumulative placement statistics. The scenario
// is pulled one chunk at a time — nothing is materialized — and each
// batch's decisions are fed back to feedback-aware scenarios before the
// next chunk is generated. Stream positions continue from transactions
// already placed on this engine.
func (e *Engine) PlaceWorkload(n int) (PlacementStats, error) {
	if e.workloadName == "" {
		return e.Stats(), fmt.Errorf("%w: PlaceWorkload requires WithWorkload", ErrBadOption)
	}
	if n <= 0 {
		n = e.txs
	}
	if n <= 0 {
		n = defaultRunTxs
	}
	src, err := e.newWorkloadSource(n)
	if err != nil {
		return e.Stats(), err
	}
	defer workload.Close(src)
	obs, _ := src.(workload.Observer)
	base := e.Stats().Placed
	// Capacity-bounded strategies size per-shard budgets from the stream
	// hint; default it to this stream's length if nothing was configured.
	e.mu.Lock()
	if e.placer == nil && e.streamCap == 0 && e.dataset == nil {
		e.streamCap = base + n
	}
	e.mu.Unlock()
	chunk := e.batchSize()
	buf := make([]StreamTx, 0, chunk)
	var shards []int
	var tx workload.Tx
	for placed := 0; placed < n; {
		buf = buf[:0]
		for len(buf) < chunk && placed+len(buf) < n && src.Next(&tx) {
			ins := make([]int, len(tx.Inputs))
			for j, in := range tx.Inputs {
				ins[j] = base + in.Tx
			}
			buf = append(buf, StreamTx{Inputs: ins, Outputs: tx.Outputs})
		}
		if len(buf) == 0 {
			break
		}
		shards, err = e.PlaceBatch(buf, shards)
		if obs != nil {
			for j, s := range shards {
				obs.Observe(placed+j, s)
			}
		}
		placed += len(shards)
		if err != nil {
			return e.Stats(), err
		}
	}
	if f, ok := src.(workload.Failer); ok {
		if err := f.Err(); err != nil {
			return e.Stats(), fmt.Errorf("optchain: workload %s: %w", src.Name(), err)
		}
	}
	return e.Stats(), nil
}

// Stats returns the streaming-mode placement statistics so far.
func (e *Engine) Stats() PlacementStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := PlacementStats{
		Placed:            e.placed,
		Cross:             e.cross.Cross,
		CrossFraction:     e.cross.Fraction(),
		ParallelInputRefs: e.epoch.InputRefs,
		CrossChunkRefs:    e.epoch.CrossChunkRefs,
	}
	if e.placer != nil {
		st.ShardCounts = e.placer.Assignment().Counts()
	}
	return st
}

// Assignment exposes the streaming-mode placement decisions (nil before
// the first Place).
func (e *Engine) Assignment() *Assignment {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.placer == nil {
		return nil
	}
	return e.placer.Assignment()
}

// CrossShardFraction returns the streaming-mode cross-shard fraction.
func (e *Engine) CrossShardFraction() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cross.Fraction()
}

// MetricsSnapshot returns the engine's latest progress snapshot. During
// Run it is refreshed every progress tick, so other goroutines can watch a
// long simulation live; in streaming mode it reflects the placed stream.
func (e *Engine) MetricsSnapshot() MetricsSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snap
}

// defaultRunTxs sizes the generated dataset when Run is called on an
// engine with neither WithDataset nor WithTxs.
const defaultRunTxs = 20_000

// Run drives one full sharded-blockchain simulation (§V): committees on a
// simulated network, clients replaying the stream at the configured rate,
// the engine's strategy placing each transaction online, and its protocol
// committing cross-shard transactions. Cancellation or deadline expiry on
// ctx aborts the run promptly with the context's error; progress is
// observable mid-run through WithProgress and MetricsSnapshot.
func (e *Engine) Run(ctx context.Context) (*SimResult, error) {
	if ctx == nil {
		// Documented nil-ctx convenience: run to completion, uncancellable.
		ctx = context.Background() //optchain:background
	}
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		return nil, ErrRunning
	}
	e.running = true
	d := e.dataset
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.running = false
		e.mu.Unlock()
	}()

	var src workload.Source
	runTxs := e.txs
	if e.workloadName != "" {
		// Workload scenarios stream: the simulation pulls one transaction
		// per issue event, so no Dataset is materialized.
		if runTxs == 0 {
			runTxs = defaultRunTxs
		}
		var err error
		src, err = e.newWorkloadSource(runTxs)
		if err != nil {
			return nil, err
		}
		// Released on every exit path: a cancelled or failed run must not
		// leave a replay component's trace file open.
		defer workload.Close(src)
	} else if d == nil {
		cfg := DatasetDefaults()
		cfg.N = e.txs
		if cfg.N == 0 {
			cfg.N = defaultRunTxs
		}
		cfg.Seed = e.seed
		var err error
		d, err = GenerateDataset(cfg)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.dataset = d
		e.mu.Unlock()
	}

	part := e.metisPart
	if part == nil && strings.EqualFold(e.strategy, "Metis") {
		if d == nil {
			return nil, fmt.Errorf("%w: the Metis strategy replays an offline partition and needs a materialized dataset, not a streaming workload", ErrBadOption)
		}
		n := e.txs
		if n == 0 || n > d.Len() {
			n = d.Len()
		}
		var err error
		part, err = PartitionTaN(d.Slice(n), e.shards, e.seed)
		if err != nil {
			return nil, err
		}
	}

	simCfg := sim.Config{
		Dataset:       d,
		Source:        src,
		Txs:           runTxs,
		Shards:        e.shards,
		Validators:    e.validators,
		Rate:          e.rate,
		Placer:        sim.PlacerKind(e.strategy),
		MetisPart:     part,
		Protocol:      sim.ProtocolKind(e.protocol),
		Clients:       e.clients,
		Net:           e.netCfg,
		Shard:         e.shardCfg,
		Seed:          e.seed,
		MaxSimTime:    e.maxSimTime,
		ValidateUTXO:  e.validateUTXO,
		Alpha:         e.alpha,
		L2SWght:       e.l2sWeight,
		ExactL2S:      e.exactL2S,
		ProgressEvery: e.progressEvery,
		Progress: func(s sim.Snapshot) {
			e.mu.Lock()
			e.snap = s
			e.mu.Unlock()
			if e.progress != nil {
				e.progress(s)
			}
		},
	}
	return sim.RunContext(ctx, simCfg)
}

// DatasetStream adapts a dataset to the Engine's streaming interface: one
// StreamTx per transaction, in stream order, with deduplicated inputs and
// the true output count.
func DatasetStream(d *Dataset) iter.Seq[StreamTx] {
	return func(yield func(StreamTx) bool) {
		var buf []txgraph.Node
		for i := 0; i < d.Len(); i++ {
			buf = d.InputTxNodes(i, buf)
			ins := make([]int, len(buf))
			for j, v := range buf {
				ins[j] = int(v)
			}
			if !yield(StreamTx{Inputs: ins, Outputs: d.NumOutputs(i)}) {
				return
			}
		}
	}
}
